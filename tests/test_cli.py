"""CLI smoke tests."""

import json
from pathlib import Path

import pytest

from repro import cli


def test_list_runs(capsys):
    assert cli.main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig10" in out
    assert "table5" in out


def test_driver_registry_covers_figures():
    for key in ("fig10", "fig11", "fig14", "fig22", "table1", "table5", "fig3c"):
        assert key in cli.DRIVERS


def test_run_fast_driver(capsys, tmp_path):
    assert cli.main(["run", "fig10", "--out", str(tmp_path)]) == 0
    data = json.loads((tmp_path / "fig10.json").read_text())
    assert [row["extra_rounds"] for row in data] == [None, 5, 11, 22, 26, 52, 34, 68]


def test_run_unknown_driver():
    assert cli.main(["run", "figurine"]) == 2


def test_run_with_shots(capsys, tmp_path):
    assert cli.main(["run", "fig4a", "--shots", "2000", "--out", str(tmp_path)]) == 0
    assert (tmp_path / "fig4a.json").exists()


def test_decode_engine_flags_apply_during_run_and_restore(capsys, tmp_path, monkeypatch):
    from repro.experiments import ler

    monkeypatch.setitem(ler.DECODE_DEFAULTS, "workers", 1)
    monkeypatch.setitem(ler.DECODE_DEFAULTS, "dedup", True)
    seen = {}
    original = cli.run_driver

    def spy(*args, **kwargs):
        seen.update(ler.DECODE_DEFAULTS)
        return original(*args, **kwargs)

    monkeypatch.setattr(cli, "run_driver", spy)
    assert (
        cli.main(
            ["run", "fig10", "--out", str(tmp_path), "--decode-workers", "3", "--no-dedup"]
        )
        == 0
    )
    # flags were live while the driver ran ...
    assert seen["workers"] == 3 and seen["dedup"] is False
    # ... and restored afterwards so later in-process calls aren't tainted
    assert ler.DECODE_DEFAULTS["workers"] == 1
    assert ler.DECODE_DEFAULTS["dedup"] is True


def test_decode_workers_must_be_positive():
    with pytest.raises(SystemExit):
        cli.main(["run", "fig10", "--decode-workers", "0"])


# ---------------------------------------------------------------------------
# sweep subcommand
# ---------------------------------------------------------------------------


@pytest.fixture
def sweep_spec_file(tmp_path):
    spec = {
        "name": "cli-test",
        "hardware": "google",
        "distances": [2],
        "taus_ns": [500.0],
        "policies": ["passive"],
        "batch_shots": 800,
        "min_shots": 800,
        "max_shots": 800,
        "seed": 17,
    }
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(spec))
    return path


def test_sweep_run_then_rerun_serves_from_store(capsys, tmp_path, sweep_spec_file):
    store = tmp_path / "store"
    assert cli.main(["sweep", "run", str(sweep_spec_file), "--store", str(store)]) == 0
    out = capsys.readouterr().out
    assert '"shots_decoded": 800' in out
    assert cli.main(["sweep", "run", str(sweep_spec_file), "--store", str(store), "--resume"]) == 0
    out = capsys.readouterr().out
    assert '"shots_decoded": 0' in out
    assert '"points_from_store": 1' in out
    assert "[store]" in out


def test_sweep_status_reports_point_states(capsys, tmp_path, sweep_spec_file):
    store = tmp_path / "store"
    assert cli.main(["sweep", "status", str(sweep_spec_file), "--store", str(store)]) == 0
    assert "missing" in capsys.readouterr().out
    cli.main(["sweep", "run", str(sweep_spec_file), "--store", str(store)])
    capsys.readouterr()
    assert cli.main(["sweep", "status", str(sweep_spec_file), "--store", str(store)]) == 0
    assert "converged" in capsys.readouterr().out
    assert cli.main(["sweep", "status", "--store", str(store)]) == 0
    assert '"records": 1' in capsys.readouterr().out


def test_sweep_clear_requires_confirmation(capsys, tmp_path, sweep_spec_file):
    store = tmp_path / "store"
    cli.main(["sweep", "run", str(sweep_spec_file), "--store", str(store)])
    capsys.readouterr()
    assert cli.main(["sweep", "clear", "--store", str(store)]) == 1
    assert "pass --yes" in capsys.readouterr().out
    assert cli.main(["sweep", "clear", "--store", str(store), "--yes"]) == 0
    assert "removed 1 records" in capsys.readouterr().out


def test_sweep_run_overrides_spec_fields(capsys, tmp_path, sweep_spec_file):
    store = tmp_path / "store"
    assert (
        cli.main(
            [
                "sweep", "run", str(sweep_spec_file),
                "--store", str(store),
                "--max-shots", "1600",
                "--seed", "23",
            ]
        )
        == 0
    )
    assert '"shots_decoded": 1600' in capsys.readouterr().out


def test_run_decode_backend_flag_applies_and_restores(capsys, tmp_path, monkeypatch):
    from repro.experiments import ler

    monkeypatch.setitem(ler.DECODE_DEFAULTS, "backend", "auto")
    seen = {}
    original = cli.run_driver

    def spy(*args, **kwargs):
        seen.update(ler.DECODE_DEFAULTS)
        return original(*args, **kwargs)

    monkeypatch.setattr(cli, "run_driver", spy)
    assert cli.main(["run", "fig10", "--out", str(tmp_path), "--decode-backend", "python"]) == 0
    assert seen["backend"] == "python"
    assert ler.DECODE_DEFAULTS["backend"] == "auto"  # restored afterwards


def test_run_decode_backend_rejects_unknown_names():
    with pytest.raises(SystemExit):
        cli.main(["run", "fig10", "--decode-backend", "fortran"])


def test_sweep_export_writes_benchmark_rows(capsys, tmp_path, sweep_spec_file):
    store = tmp_path / "store"
    out_file = tmp_path / "rows.json"
    # exporting before running marks the point missing, decodes nothing
    assert cli.main(["sweep", "export", str(sweep_spec_file), "--store", str(store)]) == 0
    assert '"status": "missing"' in capsys.readouterr().out
    cli.main(["sweep", "run", str(sweep_spec_file), "--store", str(store)])
    capsys.readouterr()
    assert (
        cli.main(
            ["sweep", "export", str(sweep_spec_file), "--store", str(store),
             "--out", str(out_file)]
        )
        == 0
    )
    rows = json.loads(out_file.read_text())
    assert len(rows) == 1
    assert rows[0]["status"] == "ok"
    assert rows[0]["shots"] == 800
    assert len(rows[0]["ler"]) == len(rows[0]["failures"]) > 0


def test_sweep_gc_dry_run_then_prune(capsys, tmp_path, sweep_spec_file):
    store_dir = tmp_path / "store"
    cli.main(["sweep", "run", str(sweep_spec_file), "--store", str(store_dir)])
    capsys.readouterr()
    from repro.store import ResultStore

    store = ResultStore(store_dir)
    key = store.keys()[0]
    store.put(key, dict(store.get(key), updated_at=1.0))  # very stale

    assert cli.main(
        ["sweep", "gc", "--older-than", "30", "--store", str(store_dir), "--dry-run"]
    ) == 0
    assert "would prune 1" in capsys.readouterr().out
    assert key in store

    assert cli.main(
        ["sweep", "gc", "--older-than", "30", "--store", str(store_dir)]
    ) == 0
    assert "pruned 1" in capsys.readouterr().out
    assert key not in store


def test_sweep_run_decode_backend_override(capsys, tmp_path, sweep_spec_file):
    store = tmp_path / "store"
    assert (
        cli.main(
            ["sweep", "run", str(sweep_spec_file), "--store", str(store),
             "--decode-backend", "numpy"]
        )
        == 0
    )
    assert '"shots_decoded": 800' in capsys.readouterr().out


def test_sweep_export_seed_override_matches_seeded_run(capsys, tmp_path, sweep_spec_file):
    store = tmp_path / "store"
    cli.main(["sweep", "run", str(sweep_spec_file), "--store", str(store), "--seed", "99"])
    capsys.readouterr()
    # without the override the point keys don't match the seeded store
    assert cli.main(["sweep", "export", str(sweep_spec_file), "--store", str(store)]) == 0
    assert '"status": "missing"' in capsys.readouterr().out
    assert cli.main(
        ["sweep", "export", str(sweep_spec_file), "--store", str(store), "--seed", "99"]
    ) == 0
    assert '"status": "ok"' in capsys.readouterr().out


def test_sweep_run_decode_backend_unknown_is_clean_error(capsys, tmp_path, sweep_spec_file):
    rc = cli.main(
        ["sweep", "run", str(sweep_spec_file), "--store", str(tmp_path / "s"),
         "--decode-backend", "fortran"]
    )
    assert rc == 2
    err = capsys.readouterr().err
    assert "unknown decode backend" in err
    assert "Traceback" not in err  # a clear error, not a crash
    # nothing was decoded or stored before the rejection
    assert not (tmp_path / "s").exists()


# ---------------------------------------------------------------------------
# sweep subcommand edge cases
# ---------------------------------------------------------------------------


def test_sweep_export_on_missing_store_marks_all_points_missing(
    capsys, tmp_path, sweep_spec_file
):
    # a store directory that was never created: export still exits 0 and
    # emits one "missing" row per grid point instead of crashing
    out_file = tmp_path / "rows.json"
    rc = cli.main(
        ["sweep", "export", str(sweep_spec_file),
         "--store", str(tmp_path / "never-created"), "--out", str(out_file)]
    )
    assert rc == 0
    rows = json.loads(out_file.read_text())
    assert [r["status"] for r in rows] == ["missing"]
    assert not (tmp_path / "never-created").exists()  # export created nothing


def test_sweep_export_partial_store_mixes_ok_and_missing(capsys, tmp_path):
    spec = {
        "name": "partial",
        "hardware": "google",
        "distances": [2],
        "taus_ns": [500.0],
        "policies": ["passive", "active"],
        "batch_shots": 400,
        "min_shots": 400,
        "max_shots": 400,
        "seed": 17,
    }
    narrow = tmp_path / "narrow.json"
    narrow.write_text(json.dumps(dict(spec, policies=["passive"])))
    full = tmp_path / "full.json"
    full.write_text(json.dumps(spec))
    store = tmp_path / "store"
    assert cli.main(["sweep", "run", str(narrow), "--store", str(store)]) == 0
    capsys.readouterr()
    # exporting the wider spec over the narrower store: decoded point is
    # "ok" with real rows, the never-run one is "missing" without columns
    assert cli.main(["sweep", "export", str(full), "--store", str(store)]) == 0
    rows = json.loads(capsys.readouterr().out)
    by_policy = {r["policy"]: r for r in rows}
    assert by_policy["passive"]["status"] == "ok"
    assert by_policy["passive"]["shots"] == 400
    assert by_policy["active"]["status"] == "missing"
    assert "shots" not in by_policy["active"]


def test_sweep_gc_dry_run_leaves_mtimes_untouched(capsys, tmp_path, sweep_spec_file):
    store_dir = tmp_path / "store"
    cli.main(["sweep", "run", str(sweep_spec_file), "--store", str(store_dir)])
    capsys.readouterr()
    from repro.store import ResultStore

    store = ResultStore(store_dir)
    key = store.keys()[0]
    store.put(key, dict(store.get(key), updated_at=1.0))  # very stale
    path = store_dir / "points" / key[:2] / f"{key}.json"
    before = path.stat().st_mtime_ns

    assert cli.main(
        ["sweep", "gc", "--older-than", "30", "--store", str(store_dir), "--dry-run"]
    ) == 0
    assert "would prune 1" in capsys.readouterr().out
    assert path.stat().st_mtime_ns == before  # dry run read, never wrote
    assert key in store


def test_sweep_run_restart_and_resume_are_mutually_exclusive(
    capsys, tmp_path, sweep_spec_file
):
    rc = cli.main(
        ["sweep", "run", str(sweep_spec_file), "--store", str(tmp_path / "s"),
         "--restart", "--resume"]
    )
    assert rc == 2
    assert "mutually exclusive" in capsys.readouterr().err


def test_sweep_run_speculate_matches_sequential_records(capsys, tmp_path, sweep_spec_file):
    from repro.store import ResultStore

    seq_store, spec_store = tmp_path / "seq", tmp_path / "spec"
    assert cli.main(
        ["sweep", "run", str(sweep_spec_file), "--store", str(seq_store)]
    ) == 0
    capsys.readouterr()
    assert cli.main(
        ["sweep", "run", str(sweep_spec_file), "--store", str(spec_store),
         "--workers", "2", "--speculate", "2"]
    ) == 0
    out = capsys.readouterr().out
    assert '"speculate": 2' in out
    a, b = ResultStore(seq_store), ResultStore(spec_store)
    assert a.keys() == b.keys()
    for key in a.keys():
        ra, rb = a.get(key), b.get(key)
        assert ra["failures"] == rb["failures"]
        assert ra["shots"] == rb["shots"]


def test_sweep_run_rejects_negative_speculate(capsys, tmp_path, sweep_spec_file):
    rc = cli.main(
        ["sweep", "run", str(sweep_spec_file), "--store", str(tmp_path / "s"),
         "--speculate", "-1"]
    )
    assert rc == 2
    assert "non-negative" in capsys.readouterr().err


def test_version_flag_reports_package_version(capsys):
    with pytest.raises(SystemExit) as exc:
        cli.main(["--version"])
    assert exc.value.code == 0
    out = capsys.readouterr().out
    import repro

    assert out.strip().endswith(repro.__version__)


def test_version_matches_pyproject():
    import tomllib

    import repro

    pyproject = Path(__file__).resolve().parents[1] / "pyproject.toml"
    with open(pyproject, "rb") as f:
        assert tomllib.load(f)["project"]["version"] == repro.__version__


def test_lint_help_exits_clean(capsys):
    with pytest.raises(SystemExit) as exc:
        cli.main(["lint", "--help"])
    assert exc.value.code == 0
    out = capsys.readouterr().out
    for flag in ("--only", "--format", "--baseline", "--update-lock"):
        assert flag in out


def test_lint_unknown_rule_is_usage_error(capsys):
    assert cli.main(["lint", "--only", "no-such-rule", "src/repro"]) == 2
    err = capsys.readouterr().err
    assert "no-such-rule" in err and "determinism-time" in err


def test_lint_list_rules_prints_catalogue(capsys):
    assert cli.main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    from repro import analysis

    for name in analysis.names():
        assert name in out


# ---------------------------------------------------------------------------
# observability: sweep run --trace/--metrics-out, trace summarize, status -v
# ---------------------------------------------------------------------------


def test_sweep_run_writes_trace_and_metrics(capsys, tmp_path, sweep_spec_file):
    from repro import obs

    trace = tmp_path / "t.json"
    metrics = tmp_path / "m.json"
    assert (
        cli.main(
            [
                "sweep", "run", str(sweep_spec_file),
                "--store", str(tmp_path / "store"),
                "--trace", str(trace),
                "--metrics-out", str(metrics),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "wrote trace" in out and "wrote metrics" in out
    # the CLI cleaned up after itself: tracing is off again
    assert not obs.enabled()

    doc = json.loads(trace.read_text())
    assert doc["schema"] == obs.TRACE_SCHEMA
    assert doc["traceEvents"]
    kinds = {ev["name"] for ev in doc["traceEvents"]}
    assert "ler.sample" in kinds and "store.commit" in kinds
    # a warm SyndromeCache can satisfy every shot (no kernel span opens),
    # but one of the two decode phases is always present
    assert kinds & {"decode.kernel", "decode.cache"}

    snap = obs.load_metrics(metrics)
    assert snap["histograms"]


def test_trace_summarize_prints_percentile_breakdown(capsys, tmp_path, sweep_spec_file):
    trace = tmp_path / "t.json"
    cli.main(
        [
            "sweep", "run", str(sweep_spec_file),
            "--store", str(tmp_path / "store"),
            "--trace", str(trace),
        ]
    )
    capsys.readouterr()
    assert cli.main(["trace", "summarize", str(trace)]) == 0
    out = capsys.readouterr().out
    for column in ("span", "count", "total_s", "p50_us", "p95_us", "p99_us"):
        assert column in out
    assert "ler.sample" in out

    assert cli.main(["trace", "summarize", str(trace), "--format", "json"]) == 0
    rows = json.loads(capsys.readouterr().out)
    assert any(r["name"] == "ler.sample" for r in rows)


def test_trace_summarize_missing_file_is_clean_error(capsys, tmp_path):
    assert cli.main(["trace", "summarize", str(tmp_path / "nope.json")]) == 2
    assert "cannot summarize" in capsys.readouterr().err


def test_sweep_run_trace_env_knob(capsys, tmp_path, sweep_spec_file, monkeypatch):
    trace = tmp_path / "env-trace.json"
    monkeypatch.setenv("REPRO_TRACE", str(trace))
    assert (
        cli.main(
            ["sweep", "run", str(sweep_spec_file), "--store", str(tmp_path / "store")]
        )
        == 0
    )
    assert json.loads(trace.read_text())["traceEvents"]


def test_sweep_run_tracing_is_bit_neutral(capsys, tmp_path, sweep_spec_file):
    from repro.experiments.sweeps import record_parity_view
    from repro.store import ResultStore

    cli.main(["sweep", "run", str(sweep_spec_file), "--store", str(tmp_path / "plain")])
    cli.main(
        [
            "sweep", "run", str(sweep_spec_file),
            "--store", str(tmp_path / "traced"),
            "--trace", str(tmp_path / "t.json"),
        ]
    )
    plain = ResultStore(tmp_path / "plain")
    traced = ResultStore(tmp_path / "traced")
    assert plain.keys() == traced.keys() and len(plain.keys()) > 0
    for key in plain.keys():
        assert record_parity_view(plain.get(key)) == record_parity_view(traced.get(key))


def test_sweep_status_verbose_reports_decode_stats(capsys, tmp_path, sweep_spec_file):
    store = tmp_path / "store"
    cli.main(["sweep", "run", str(sweep_spec_file), "--store", str(store)])
    capsys.readouterr()
    assert (
        cli.main(["sweep", "status", str(sweep_spec_file), "--store", str(store)]) == 0
    )
    terse = capsys.readouterr().out
    assert "decode_s=" not in terse
    assert (
        cli.main(
            ["sweep", "status", str(sweep_spec_file), "--store", str(store), "--verbose"]
        )
        == 0
    )
    verbose = capsys.readouterr().out
    assert "decode_s=" in verbose
    assert "cache_hit_rate=" in verbose
    assert "shots_per_s=" in verbose
    # per-point progress from the commit-ahead batch log (converged points
    # report completion instead of an estimate)
    assert "progress:" in verbose
    assert "complete (" in verbose


# ---------------------------------------------------------------------------
# run ledger: sweep run mints a run id; runs list/show/gc; sweep watch
# ---------------------------------------------------------------------------


def _run_with_ledger(tmp_path, sweep_spec_file, capsys):
    store = tmp_path / "store"
    assert cli.main(["sweep", "run", str(sweep_spec_file), "--store", str(store)]) == 0
    out = capsys.readouterr().out
    summary = json.loads(out[out.index("{") : out.rindex("}") + 1])
    assert summary["run_id"], "sweep run should mint a run id by default"
    assert f"run {summary['run_id']} recorded" in out
    assert "sweep watch" in out  # the follow-up hint names the watcher
    return store, summary["run_id"]


def test_sweep_run_records_run_and_runs_list_shows_it(capsys, tmp_path, sweep_spec_file):
    store, run_id = _run_with_ledger(tmp_path, sweep_spec_file, capsys)
    assert cli.main(["runs", "list", "--store", str(store)]) == 0
    out = capsys.readouterr().out
    assert run_id in out and "cli-test" in out and "ok" in out

    assert cli.main(["runs", "list", "--store", str(store), "--format", "json"]) == 0
    (row,) = json.loads(capsys.readouterr().out)
    assert row["run_id"] == run_id
    assert row["status"] == "ok"
    assert row["points"] == 1
    assert row["shots_decoded"] == 800


def test_sweep_run_no_ledger_flag_opts_out(capsys, tmp_path, sweep_spec_file):
    store = tmp_path / "store"
    rc = cli.main(
        ["sweep", "run", str(sweep_spec_file), "--store", str(store), "--no-ledger"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert '"run_id": null' in out
    assert not (store / "runs").exists()
    assert cli.main(["runs", "list", "--store", str(store)]) == 0
    assert "no runs recorded" in capsys.readouterr().out


def test_runs_show_reports_manifest_and_event_counts(capsys, tmp_path, sweep_spec_file):
    store, run_id = _run_with_ledger(tmp_path, sweep_spec_file, capsys)
    assert cli.main(["runs", "show", "--latest", "--store", str(store)]) == 0
    out = capsys.readouterr().out
    assert f"run {run_id}" in out and "status=ok" in out
    assert "spec_digest:" in out and "store_salt:" in out
    assert "run_start=1" in out and "run_finish=1" in out

    assert cli.main(
        ["runs", "show", run_id, "--store", str(store), "--format", "json"]
    ) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["manifest"]["run_id"] == run_id
    assert doc["events"][0]["ev"] == "run_start"
    assert doc["events"][-1]["ev"] == "run_finish"


def test_runs_show_unknown_id_is_clean_error(capsys, tmp_path, sweep_spec_file):
    store, _ = _run_with_ledger(tmp_path, sweep_spec_file, capsys)
    assert cli.main(["runs", "show", "nope-123", "--store", str(store)]) == 2
    assert "unknown run id" in capsys.readouterr().err
    empty = tmp_path / "empty-store"
    assert cli.main(["runs", "show", "--latest", "--store", str(empty)]) == 2
    assert "no runs recorded" in capsys.readouterr().err


def test_sweep_watch_once_renders_final_frame(capsys, tmp_path, sweep_spec_file):
    store, run_id = _run_with_ledger(tmp_path, sweep_spec_file, capsys)
    assert cli.main(
        ["sweep", "watch", run_id, "--store", str(store), "--once"]
    ) == 0
    out = capsys.readouterr().out
    assert f"run {run_id}" in out and "status=ok" in out
    assert "converged" in out and "shots=800/800" in out
    assert "totals:" in out
    # --latest resolves the same run (a finished run exits without --once too)
    assert cli.main(["sweep", "watch", "--latest", "--store", str(store)]) == 0
    assert f"run {run_id}" in capsys.readouterr().out


def test_runs_gc_dry_run_then_prune(capsys, tmp_path, sweep_spec_file):
    store, run_id = _run_with_ledger(tmp_path, sweep_spec_file, capsys)
    assert cli.main(
        ["runs", "gc", "--older-than", "0", "--store", str(store), "--dry-run"]
    ) == 0
    assert "would prune 1 run(s)" in capsys.readouterr().out
    assert (store / "runs" / run_id).exists()
    assert cli.main(["runs", "gc", "--older-than", "0", "--store", str(store)]) == 0
    assert "pruned 1 run(s)" in capsys.readouterr().out
    assert not (store / "runs" / run_id).exists()
    # point records are provenance-independent: gc never touches them
    from repro.store import ResultStore

    assert len(ResultStore(store).keys()) == 1


def test_metrics_summarize_prints_counters_and_spans(capsys, tmp_path, sweep_spec_file):
    metrics = tmp_path / "m.json"
    cli.main(
        [
            "sweep", "run", str(sweep_spec_file),
            "--store", str(tmp_path / "store"),
            "--metrics-out", str(metrics),
        ]
    )
    capsys.readouterr()
    assert cli.main(["metrics", "summarize", str(metrics)]) == 0
    out = capsys.readouterr().out
    assert "counters:" in out
    assert "sweep.batches_applied" in out
    for column in ("span", "count", "total_s", "p50_us", "p99_us"):
        assert column in out

    assert cli.main(["metrics", "summarize", str(metrics), "--format", "json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["counters"]["sweep.batches_applied"] >= 1
    assert any(r["count"] for r in doc["rows"])


def test_metrics_summarize_missing_file_is_clean_error(capsys, tmp_path):
    assert cli.main(["metrics", "summarize", str(tmp_path / "nope.json")]) == 2
    assert "cannot summarize" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# sweep run --dry-run / --workers 0 / --admission; sweep watch guards
# ---------------------------------------------------------------------------


def test_sweep_run_dry_run_decodes_nothing(capsys, tmp_path, sweep_spec_file):
    store = tmp_path / "store"
    rc = cli.main(
        ["sweep", "run", str(sweep_spec_file), "--store", str(store), "--dry-run"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "dry run: 1/1 point(s) need decoding" in out
    assert "missing shots=0/800" in out
    assert not store.exists()  # nothing decoded, nothing written

    assert cli.main(["sweep", "run", str(sweep_spec_file), "--store", str(store)]) == 0
    capsys.readouterr()
    snapshot = {
        p: p.stat().st_mtime_ns for p in store.rglob("*") if p.is_file()
    }
    rc = cli.main(
        ["sweep", "run", str(sweep_spec_file), "--store", str(store), "--dry-run"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "converged (nothing to decode)" in out
    assert "dry run: 0/1 point(s) need decoding" in out
    assert {
        p: p.stat().st_mtime_ns for p in store.rglob("*") if p.is_file()
    } == snapshot  # read-only against a populated store too


def test_sweep_run_workers_zero_runs_inline(capsys, tmp_path, sweep_spec_file):
    store = tmp_path / "store"
    rc = cli.main(
        ["sweep", "run", str(sweep_spec_file), "--store", str(store),
         "--workers", "0", "--speculate", "2"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert '"shots_decoded": 800' in out
    assert '"speculate": 2' in out


def test_sweep_run_rejects_negative_workers(capsys, tmp_path, sweep_spec_file):
    rc = cli.main(
        ["sweep", "run", str(sweep_spec_file), "--store", str(tmp_path / "s"),
         "--workers", "-1"]
    )
    assert rc == 2
    assert "--workers must be non-negative" in capsys.readouterr().err


def test_sweep_run_admission_flag(capsys, tmp_path, sweep_spec_file):
    store = tmp_path / "store"
    rc = cli.main(
        ["sweep", "run", str(sweep_spec_file), "--store", str(store),
         "--speculate", "2", "--admission", "sweep"]
    )
    assert rc == 0
    assert '"shots_decoded": 800' in capsys.readouterr().out
    with pytest.raises(SystemExit):
        cli.main(
            ["sweep", "run", str(sweep_spec_file), "--store", str(store),
             "--admission", "fifo"]
        )


def test_sweep_watch_rejects_nonpositive_interval(capsys, tmp_path):
    for interval in ("0", "-2"):
        rc = cli.main(
            ["sweep", "watch", "--latest", "--store", str(tmp_path / "s"),
             "--interval", interval]
        )
        assert rc == 2
        assert "--interval must be positive" in capsys.readouterr().err


def test_sweep_watch_ctrl_c_prints_final_snapshot(
    capsys, tmp_path, sweep_spec_file, monkeypatch
):
    from repro.experiments.sweeps import SweepSpec
    from repro.obs import RunWriter, sweep_manifest
    from repro.store import ResultStore

    # a live (never finished) run, so the watch loop actually sleeps
    store = ResultStore(tmp_path / "store")
    spec = SweepSpec.from_json(sweep_spec_file)
    writer = RunWriter(store.runs_root, sweep_manifest(spec))

    def interrupted_sleep(seconds):
        raise KeyboardInterrupt

    monkeypatch.setattr("time.sleep", interrupted_sleep)
    rc = cli.main(
        ["sweep", "watch", writer.run_id, "--store", str(store.root)]
    )
    assert rc == 130  # the conventional SIGINT exit, not a traceback
    captured = capsys.readouterr()
    assert "watch interrupted" in captured.err
    # the final snapshot frame was rendered on the way out
    assert captured.out.count(f"run {writer.run_id}") == 2
