"""CLI smoke tests."""

import json

import pytest

from repro import cli


def test_list_runs(capsys):
    assert cli.main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig10" in out
    assert "table5" in out


def test_driver_registry_covers_figures():
    for key in ("fig10", "fig11", "fig14", "fig22", "table1", "table5", "fig3c"):
        assert key in cli.DRIVERS


def test_run_fast_driver(capsys, tmp_path):
    assert cli.main(["run", "fig10", "--out", str(tmp_path)]) == 0
    data = json.loads((tmp_path / "fig10.json").read_text())
    assert [row["extra_rounds"] for row in data] == [None, 5, 11, 22, 26, 52, 34, 68]


def test_run_unknown_driver():
    assert cli.main(["run", "figurine"]) == 2


def test_run_with_shots(capsys, tmp_path):
    assert cli.main(["run", "fig4a", "--shots", "2000", "--out", str(tmp_path)]) == 0
    assert (tmp_path / "fig4a.json").exists()


def test_decode_engine_flags_apply_during_run_and_restore(capsys, tmp_path, monkeypatch):
    from repro.experiments import ler

    monkeypatch.setitem(ler.DECODE_DEFAULTS, "workers", 1)
    monkeypatch.setitem(ler.DECODE_DEFAULTS, "dedup", True)
    seen = {}
    original = cli.run_driver

    def spy(*args, **kwargs):
        seen.update(ler.DECODE_DEFAULTS)
        return original(*args, **kwargs)

    monkeypatch.setattr(cli, "run_driver", spy)
    assert (
        cli.main(
            ["run", "fig10", "--out", str(tmp_path), "--decode-workers", "3", "--no-dedup"]
        )
        == 0
    )
    # flags were live while the driver ran ...
    assert seen["workers"] == 3 and seen["dedup"] is False
    # ... and restored afterwards so later in-process calls aren't tainted
    assert ler.DECODE_DEFAULTS["workers"] == 1
    assert ler.DECODE_DEFAULTS["dedup"] is True


def test_decode_workers_must_be_positive():
    with pytest.raises(SystemExit):
        cli.main(["run", "fig10", "--decode-workers", "0"])


# ---------------------------------------------------------------------------
# sweep subcommand
# ---------------------------------------------------------------------------


@pytest.fixture
def sweep_spec_file(tmp_path):
    spec = {
        "name": "cli-test",
        "hardware": "google",
        "distances": [2],
        "taus_ns": [500.0],
        "policies": ["passive"],
        "batch_shots": 800,
        "min_shots": 800,
        "max_shots": 800,
        "seed": 17,
    }
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(spec))
    return path


def test_sweep_run_then_rerun_serves_from_store(capsys, tmp_path, sweep_spec_file):
    store = tmp_path / "store"
    assert cli.main(["sweep", "run", str(sweep_spec_file), "--store", str(store)]) == 0
    out = capsys.readouterr().out
    assert '"shots_decoded": 800' in out
    assert cli.main(["sweep", "run", str(sweep_spec_file), "--store", str(store), "--resume"]) == 0
    out = capsys.readouterr().out
    assert '"shots_decoded": 0' in out
    assert '"points_from_store": 1' in out
    assert "[store]" in out


def test_sweep_status_reports_point_states(capsys, tmp_path, sweep_spec_file):
    store = tmp_path / "store"
    assert cli.main(["sweep", "status", str(sweep_spec_file), "--store", str(store)]) == 0
    assert "missing" in capsys.readouterr().out
    cli.main(["sweep", "run", str(sweep_spec_file), "--store", str(store)])
    capsys.readouterr()
    assert cli.main(["sweep", "status", str(sweep_spec_file), "--store", str(store)]) == 0
    assert "converged" in capsys.readouterr().out
    assert cli.main(["sweep", "status", "--store", str(store)]) == 0
    assert '"records": 1' in capsys.readouterr().out


def test_sweep_clear_requires_confirmation(capsys, tmp_path, sweep_spec_file):
    store = tmp_path / "store"
    cli.main(["sweep", "run", str(sweep_spec_file), "--store", str(store)])
    capsys.readouterr()
    assert cli.main(["sweep", "clear", "--store", str(store)]) == 1
    assert "pass --yes" in capsys.readouterr().out
    assert cli.main(["sweep", "clear", "--store", str(store), "--yes"]) == 0
    assert "removed 1 records" in capsys.readouterr().out


def test_sweep_run_overrides_spec_fields(capsys, tmp_path, sweep_spec_file):
    store = tmp_path / "store"
    assert (
        cli.main(
            [
                "sweep", "run", str(sweep_spec_file),
                "--store", str(store),
                "--max-shots", "1600",
                "--seed", "23",
            ]
        )
        == 0
    )
    assert '"shots_decoded": 1600' in capsys.readouterr().out


def test_run_decode_backend_flag_applies_and_restores(capsys, tmp_path, monkeypatch):
    from repro.experiments import ler

    monkeypatch.setitem(ler.DECODE_DEFAULTS, "backend", "auto")
    seen = {}
    original = cli.run_driver

    def spy(*args, **kwargs):
        seen.update(ler.DECODE_DEFAULTS)
        return original(*args, **kwargs)

    monkeypatch.setattr(cli, "run_driver", spy)
    assert cli.main(["run", "fig10", "--out", str(tmp_path), "--decode-backend", "python"]) == 0
    assert seen["backend"] == "python"
    assert ler.DECODE_DEFAULTS["backend"] == "auto"  # restored afterwards


def test_run_decode_backend_rejects_unknown_names():
    with pytest.raises(SystemExit):
        cli.main(["run", "fig10", "--decode-backend", "fortran"])


def test_sweep_export_writes_benchmark_rows(capsys, tmp_path, sweep_spec_file):
    store = tmp_path / "store"
    out_file = tmp_path / "rows.json"
    # exporting before running marks the point missing, decodes nothing
    assert cli.main(["sweep", "export", str(sweep_spec_file), "--store", str(store)]) == 0
    assert '"status": "missing"' in capsys.readouterr().out
    cli.main(["sweep", "run", str(sweep_spec_file), "--store", str(store)])
    capsys.readouterr()
    assert (
        cli.main(
            ["sweep", "export", str(sweep_spec_file), "--store", str(store),
             "--out", str(out_file)]
        )
        == 0
    )
    rows = json.loads(out_file.read_text())
    assert len(rows) == 1
    assert rows[0]["status"] == "ok"
    assert rows[0]["shots"] == 800
    assert len(rows[0]["ler"]) == len(rows[0]["failures"]) > 0


def test_sweep_gc_dry_run_then_prune(capsys, tmp_path, sweep_spec_file):
    store_dir = tmp_path / "store"
    cli.main(["sweep", "run", str(sweep_spec_file), "--store", str(store_dir)])
    capsys.readouterr()
    from repro.store import ResultStore

    store = ResultStore(store_dir)
    key = store.keys()[0]
    store.put(key, dict(store.get(key), updated_at=1.0))  # very stale

    assert cli.main(
        ["sweep", "gc", "--older-than", "30", "--store", str(store_dir), "--dry-run"]
    ) == 0
    assert "would prune 1" in capsys.readouterr().out
    assert key in store

    assert cli.main(
        ["sweep", "gc", "--older-than", "30", "--store", str(store_dir)]
    ) == 0
    assert "pruned 1" in capsys.readouterr().out
    assert key not in store


def test_sweep_run_decode_backend_override(capsys, tmp_path, sweep_spec_file):
    store = tmp_path / "store"
    assert (
        cli.main(
            ["sweep", "run", str(sweep_spec_file), "--store", str(store),
             "--decode-backend", "numpy"]
        )
        == 0
    )
    assert '"shots_decoded": 800' in capsys.readouterr().out


def test_sweep_export_seed_override_matches_seeded_run(capsys, tmp_path, sweep_spec_file):
    store = tmp_path / "store"
    cli.main(["sweep", "run", str(sweep_spec_file), "--store", str(store), "--seed", "99"])
    capsys.readouterr()
    # without the override the point keys don't match the seeded store
    assert cli.main(["sweep", "export", str(sweep_spec_file), "--store", str(store)]) == 0
    assert '"status": "missing"' in capsys.readouterr().out
    assert cli.main(
        ["sweep", "export", str(sweep_spec_file), "--store", str(store), "--seed", "99"]
    ) == 0
    assert '"status": "ok"' in capsys.readouterr().out


def test_sweep_run_decode_backend_unknown_is_clean_error(capsys, tmp_path, sweep_spec_file):
    rc = cli.main(
        ["sweep", "run", str(sweep_spec_file), "--store", str(tmp_path / "s"),
         "--decode-backend", "fortran"]
    )
    assert rc == 2
    assert "unknown decode backend" in capsys.readouterr().err
