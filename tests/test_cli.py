"""CLI smoke tests."""

import json

import pytest

from repro import cli


def test_list_runs(capsys):
    assert cli.main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig10" in out
    assert "table5" in out


def test_driver_registry_covers_figures():
    for key in ("fig10", "fig11", "fig14", "fig22", "table1", "table5", "fig3c"):
        assert key in cli.DRIVERS


def test_run_fast_driver(capsys, tmp_path):
    assert cli.main(["run", "fig10", "--out", str(tmp_path)]) == 0
    data = json.loads((tmp_path / "fig10.json").read_text())
    assert [row["extra_rounds"] for row in data] == [None, 5, 11, 22, 26, 52, 34, 68]


def test_run_unknown_driver():
    assert cli.main(["run", "figurine"]) == 2


def test_run_with_shots(capsys, tmp_path):
    assert cli.main(["run", "fig4a", "--shots", "2000", "--out", str(tmp_path)]) == 0
    assert (tmp_path / "fig4a.json").exists()


def test_decode_engine_flags_apply_during_run_and_restore(capsys, tmp_path, monkeypatch):
    from repro.experiments import ler

    monkeypatch.setitem(ler.DECODE_DEFAULTS, "workers", 1)
    monkeypatch.setitem(ler.DECODE_DEFAULTS, "dedup", True)
    seen = {}
    original = cli.run_driver

    def spy(*args, **kwargs):
        seen.update(ler.DECODE_DEFAULTS)
        return original(*args, **kwargs)

    monkeypatch.setattr(cli, "run_driver", spy)
    assert (
        cli.main(
            ["run", "fig10", "--out", str(tmp_path), "--decode-workers", "3", "--no-dedup"]
        )
        == 0
    )
    # flags were live while the driver ran ...
    assert seen["workers"] == 3 and seen["dedup"] is False
    # ... and restored afterwards so later in-process calls aren't tainted
    assert ler.DECODE_DEFAULTS["workers"] == 1
    assert ler.DECODE_DEFAULTS["dedup"] is True


def test_decode_workers_must_be_positive():
    with pytest.raises(SystemExit):
        cli.main(["run", "fig10", "--decode-workers", "0"])
