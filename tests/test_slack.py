"""Slack-arithmetic tests: Eq. (1) / Eq. (2) against the paper's numbers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import extra_rounds_solution, hybrid_solution, normalize_slack


def test_fig10_values_exact():
    """Figure 10 bar values, including the 'Not possible' configuration."""
    expected = {
        (1000, 1200, 500): None,
        (1000, 1200, 1000): 5,
        (1000, 1150, 500): 11,
        (1000, 1150, 1000): 22,
        (1000, 1325, 500): 26,
        (1000, 1325, 1000): 52,
        (1000, 1725, 500): 34,
        (1000, 1725, 1000): 68,
    }
    for (tp, tpp, tau), m in expected.items():
        sol = extra_rounds_solution(tp, tpp, tau, max_rounds=200)
        if m is None:
            assert sol is None, (tp, tpp, tau)
        else:
            assert sol is not None and sol.extra_rounds_p == m, (tp, tpp, tau)
            assert sol.verify(tp, tpp, tau)


def test_equal_cycles_cannot_use_extra_rounds():
    assert extra_rounds_solution(1000, 1000, 500) is None


def test_extra_rounds_bound_respected():
    assert extra_rounds_solution(1000, 1725, 1000, max_rounds=10) is None


def test_extra_rounds_invalid_inputs():
    with pytest.raises(ValueError):
        extra_rounds_solution(0, 1000, 100)
    with pytest.raises(ValueError):
        extra_rounds_solution(1000, 1000, -5)


def test_table2_hybrid_solution():
    """Table 2: T_P=1000, T_P'=1325, tau=1000, eps=400 -> z=4, idle=300 ns."""
    sol = hybrid_solution(1000, 1325, 1000, 400)
    assert sol is not None
    assert sol.extra_rounds_p == 4
    assert sol.residual_slack_ns == 300
    assert sol.verify(1000, 1325, 1000, 400)


def test_hybrid_smaller_eps_needs_more_rounds():
    loose = hybrid_solution(1000, 1325, 1000, 400)
    tight = hybrid_solution(1000, 1325, 1000, 100)
    assert tight is not None and loose is not None
    assert tight.extra_rounds_p >= loose.extra_rounds_p
    assert tight.residual_slack_ns < 100


def test_hybrid_no_solution_for_equal_cycles():
    assert hybrid_solution(1000, 1000, 500, 400) is None


def test_hybrid_bounded_search():
    assert hybrid_solution(1000, 1001, 999, 1, max_rounds=3) is None


def test_hybrid_invalid_inputs():
    with pytest.raises(ValueError):
        hybrid_solution(1000, 1325, 1000, 0)
    with pytest.raises(ValueError):
        hybrid_solution(-1, 1325, 1000, 100)


def test_normalize_slack():
    assert normalize_slack(2500, 1000) == 500
    assert normalize_slack(999, 1000) == 999
    with pytest.raises(ValueError):
        normalize_slack(10, 0)


@given(
    tp=st.integers(500, 2000),
    tpp=st.integers(500, 2000),
    tau=st.integers(0, 2000),
)
def test_extra_rounds_solutions_always_verify(tp, tpp, tau):
    sol = extra_rounds_solution(tp, tpp, tau, max_rounds=500)
    if sol is not None:
        assert sol.verify(tp, tpp, tau)
        assert sol.extra_rounds_p >= 1
        assert sol.extra_rounds_pp >= 0


@given(
    tp=st.integers(500, 2000),
    tpp=st.integers(500, 2000),
    tau=st.integers(0, 2000),
    eps=st.integers(1, 500),
)
def test_hybrid_solutions_always_verify(tp, tpp, tau, eps):
    sol = hybrid_solution(tp, tpp, tau, eps, max_rounds=500)
    if sol is not None:
        assert sol.verify(tp, tpp, tau, eps)
        assert 0 <= sol.residual_slack_ns < eps


@given(
    tp=st.integers(500, 2000),
    tpp=st.integers(501, 2000),
    tau=st.integers(0, 2000),
)
def test_hybrid_residual_never_exceeds_pure_extra_rounds(tp, tpp, tau):
    """With eps -> cycle time, hybrid z=1 always exists (residual < T_P')."""
    if tp == tpp:
        return
    sol = hybrid_solution(tp, tpp, tau, eps_ns=max(tp, tpp) + 1, max_rounds=5)
    assert sol is not None
    assert sol.extra_rounds_p == 1
