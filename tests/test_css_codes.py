"""Generic CSS machinery, bivariate-bicycle and color code tests."""

import numpy as np
import pytest

from repro._gf2 import in_rowspace, nullspace, rank, row_reduce
from repro.codes.color import steane_code, triangular_color_code
from repro.codes.css import (
    CssCode,
    css_memory_experiment,
    cycle_time_ns,
    syndrome_schedule,
)
from repro.codes.qldpc import bivariate_bicycle_code, make_gross_code, make_small_bb_code
from repro.noise import IBM, NoiseModel
from repro.stab import FrameSimulator, simulate_circuit


# --- GF(2) linear algebra ----------------------------------------------------


def test_row_reduce_and_rank():
    m = [[1, 1, 0], [0, 1, 1], [1, 0, 1]]  # third row = sum of first two
    reduced, pivots = row_reduce(m)
    assert len(pivots) == 2
    assert rank(m) == 2


def test_nullspace_vectors_annihilate():
    rng = np.random.default_rng(0)
    m = (rng.random((6, 10)) < 0.4).astype(np.uint8)
    ns = nullspace(m)
    assert ns.shape[0] == 10 - rank(m)
    assert not ((m @ ns.T) % 2).any()


def test_in_rowspace():
    m = np.array([[1, 1, 0], [0, 1, 1]], dtype=np.uint8)
    assert in_rowspace(m, [1, 0, 1])  # sum of the rows
    assert not in_rowspace(m, [1, 0, 0])


# --- CssCode ------------------------------------------------------------------


def test_css_commutation_enforced():
    hx = np.array([[1, 1, 0]], dtype=np.uint8)
    hz = np.array([[1, 0, 0]], dtype=np.uint8)  # anticommutes with hx
    with pytest.raises(ValueError):
        CssCode(name="bad", hx=hx, hz=hz)


def test_steane_parameters():
    code = steane_code()
    assert code.num_qubits == 7
    assert code.num_logical == 1
    assert code.check_weights() == (4, 4)
    lz = code.logical_z_operators()
    assert lz.shape == (1, 7)
    # logical commutes with all X checks but is not a Z stabilizer
    assert not ((code.hx @ lz.T) % 2).any()
    assert not in_rowspace(code.hz, lz[0])


def test_triangular_color_code_d3_is_steane():
    code = triangular_color_code(3)
    assert code.num_qubits == 7
    assert code.num_logical == 1
    with pytest.raises(NotImplementedError):
        triangular_color_code(5)
    with pytest.raises(ValueError):
        triangular_color_code(4)


def test_small_bb_code_parameters():
    code = make_small_bb_code()
    assert code.num_qubits == 72  # 2 * l * m with l = m = 6
    assert code.num_x_checks == 36
    assert code.num_logical == 12
    assert code.check_weights() == (6, 6)


def test_gross_code_parameters():
    code = make_gross_code()
    assert code.num_qubits == 144  # 2 * 12 * 6
    assert code.num_logical == 12


def test_bb_code_logical_operators_valid():
    code = make_small_bb_code()
    lz = code.logical_z_operators()
    assert lz.shape[0] == 12
    assert not ((code.hx @ lz.T) % 2).any()
    for row in lz:
        assert not in_rowspace(code.hz, row)


# --- schedules and cycle times ----------------------------------------------------


def test_schedule_layers_are_conflict_free_steane():
    code = steane_code()
    layers = syndrome_schedule(code)
    for layer in layers:
        ancillas = [a for a, _, _ in layer]
        datas = [q for _, q, _ in layer]
        assert len(set(ancillas)) == len(ancillas)
        assert len(set(datas)) == len(datas)
    total = sum(len(layer) for layer in layers)
    assert total == int(code.hx.sum() + code.hz.sum())


def test_bb_schedule_deeper_than_surface():
    """The qLDPC cycle needs more CNOT layers than the surface code's 4 —
    the desynchronization mechanism of Sec. 3.4.2."""
    code = make_small_bb_code()
    layers = syndrome_schedule(code)
    assert len(layers) >= 6
    assert cycle_time_ns(code, IBM) > IBM.cycle_time_ns


def test_steane_cycle_longer_than_surface():
    code = steane_code()
    assert len(syndrome_schedule(code)) >= 6
    assert cycle_time_ns(code, IBM) > IBM.cycle_time_ns


# --- memory experiments ----------------------------------------------------------


@pytest.mark.parametrize("basis", ["Z", "X"])
def test_steane_memory_determinism(basis):
    noise = NoiseModel(hardware=IBM, p=1e-3)
    art = css_memory_experiment(steane_code(), 2, noise, basis=basis)
    clean = art.circuit.without_noise()
    for seed in range(4):
        _, det, obs = simulate_circuit(clean, seed)
        assert det.sum() == 0
        assert obs.sum() == 0


def test_bb_memory_determinism():
    noise = NoiseModel(hardware=IBM, p=1e-3)
    art = css_memory_experiment(make_small_bb_code(), 2, noise, basis="Z")
    clean = art.circuit.without_noise()
    _, det, obs = simulate_circuit(clean, 0)
    assert det.sum() == 0
    assert obs.sum() == 0


def test_steane_memory_detects_noise():
    noise = NoiseModel(hardware=IBM, p=5e-3)
    art = css_memory_experiment(steane_code(), 3, noise)
    det, obs = FrameSimulator(art.circuit).sample(4000, rng=1)
    assert det.mean() > 0
    assert 0 < obs.mean() < 0.5


def test_memory_argument_validation():
    noise = NoiseModel(hardware=IBM, p=1e-3)
    with pytest.raises(ValueError):
        css_memory_experiment(steane_code(), 0, noise)
    with pytest.raises(ValueError):
        css_memory_experiment(steane_code(), 2, noise, basis="Y")
    with pytest.raises(ValueError):
        css_memory_experiment(steane_code(), 2, noise, logical_index=5)
