"""Utility-module tests with hypothesis property checks."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro._util import (
    combine_flip_probabilities,
    pack_bits,
    unpack_bits,
    resolve_rng,
    xor_probability,
)


def test_resolve_rng_variants():
    g = np.random.default_rng(0)
    assert resolve_rng(g) is g
    a = resolve_rng(5)
    b = resolve_rng(5)
    assert a.random() == b.random()
    assert resolve_rng(None) is not None


def test_xor_probability_known_values():
    assert xor_probability(0.0, 0.0) == 0.0
    assert xor_probability(1.0, 0.0) == 1.0
    assert xor_probability(1.0, 1.0) == 0.0
    assert xor_probability(0.5, 0.3) == pytest.approx(0.5)


def test_combine_flip_probabilities_matches_pairwise():
    assert combine_flip_probabilities([0.1]) == pytest.approx(0.1)
    assert combine_flip_probabilities([0.1, 0.2]) == pytest.approx(
        xor_probability(0.1, 0.2)
    )
    assert combine_flip_probabilities([]) == 0.0


@given(st.lists(st.floats(0.0, 1.0), max_size=8))
def test_combined_probability_stays_in_unit_interval(ps):
    p = combine_flip_probabilities(ps)
    assert -1e-12 <= p <= 0.5 + 1e-12 or p <= 1.0


@given(st.lists(st.floats(0.0, 0.49), min_size=1, max_size=8))
def test_combined_probability_at_least_max_of_small_probs(ps):
    """For sub-50% flips, combining never reduces below any single flip...
    it stays at least as large as the XOR of the largest with the rest."""
    p = combine_flip_probabilities(ps)
    assert p >= max(ps) * (1 - 2 * sum(ps[:-1]) if len(ps) > 1 else 1) - 1e-9


@given(
    st.integers(1, 200).flatmap(
        lambda n: st.tuples(st.just(n), st.lists(st.booleans(), min_size=n, max_size=n))
    )
)
def test_pack_unpack_round_trip(args):
    n, bits = args
    arr = np.array(bits, dtype=bool)
    assert np.array_equal(unpack_bits(pack_bits(arr), n), arr)


def test_env_knobs(monkeypatch):
    from repro._util import env_float, env_int

    monkeypatch.setenv("REPRO_TEST_INT", "42")
    monkeypatch.setenv("REPRO_TEST_FLOAT", "2.5")
    assert env_int("REPRO_TEST_INT", 1) == 42
    assert env_float("REPRO_TEST_FLOAT", 1.0) == 2.5
    assert env_int("REPRO_MISSING", 7) == 7
