"""k-patch lattice-surgery experiment tests (Sec. 4.3)."""

import pytest

from repro.codes.multi_surgery import MultiSurgerySpec, multi_patch_surgery_experiment
from repro.decoders import UnionFindDecoder, build_matching_graph, graphlike_distance
from repro.stab import DemSampler, circuit_to_dem, simulate_circuit
from repro.timing import PatchTimeline


@pytest.mark.parametrize("k", [2, 3])
@pytest.mark.parametrize("ls_basis", ["X", "Z"])
def test_noiseless_determinism(k, ls_basis, ibm_noise):
    art = multi_patch_surgery_experiment(
        MultiSurgerySpec(num_patches=k, distance=2, noise=ibm_noise, ls_basis=ls_basis)
    )
    clean = art.circuit.without_noise()
    for seed in range(4):
        _, det, obs = simulate_circuit(clean, seed)
        assert det.sum() == 0
        assert obs.sum() == 0


def test_three_patch_observables_and_distance(ibm_noise):
    d, k = 3, 3
    art = multi_patch_surgery_experiment(
        MultiSurgerySpec(num_patches=k, distance=d, noise=ibm_noise)
    )
    assert art.circuit.num_observables == k + 1
    dem = circuit_to_dem(art.circuit)
    graph = build_matching_graph(dem, basis=art.detector_basis)
    assert graph.decomposition_fallbacks == 0
    for obs_index in range(k + 1):
        assert graphlike_distance(graph, obs_index) == d


def test_two_patch_case_matches_pairwise_counts(ibm_noise):
    from repro.codes import SurgerySpec, surgery_experiment

    pair = surgery_experiment(SurgerySpec(distance=3, noise=ibm_noise))
    multi = multi_patch_surgery_experiment(
        MultiSurgerySpec(num_patches=2, distance=3, noise=ibm_noise)
    )
    assert multi.circuit.num_detectors == pair.circuit.num_detectors
    assert multi.circuit.num_measurements == pair.circuit.num_measurements


def test_per_patch_timelines(google_noise):
    d = 2
    timelines = (
        PatchTimeline.uniform(d + 1, pre_ns=300.0),  # leading patch idles most
        PatchTimeline.uniform(d + 1, pre_ns=150.0),
        PatchTimeline.uniform(d + 1),  # slowest patch idles nothing
    )
    art = multi_patch_surgery_experiment(
        MultiSurgerySpec(num_patches=3, distance=d, noise=google_noise, timelines=timelines)
    )
    clean = art.circuit.without_noise()
    _, det, obs = simulate_circuit(clean, 0)
    assert det.sum() == 0 and obs.sum() == 0
    # two patches carry pre-round idles, (d+1) each
    whole_patch_idles = [
        i for i in art.circuit.instructions
        if i.name == "PAULI_CHANNEL_1" and len(i.targets) == 7  # 4 data + 3 anc at d=2
    ]
    assert len(whole_patch_idles) == 2 * (d + 1)


def test_three_patch_ler_finite(google_noise):
    art = multi_patch_surgery_experiment(
        MultiSurgerySpec(num_patches=3, distance=2, noise=google_noise)
    )
    dem = circuit_to_dem(art.circuit)
    graph = build_matching_graph(dem, basis=art.detector_basis)
    det, obs = DemSampler(dem).sample(6000, rng=2)
    pred = UnionFindDecoder(graph).decode_batch(det)
    ler = (pred[:, : obs.shape[1]] ^ obs).mean(axis=0)
    assert (ler > 0).all()
    assert (ler < 0.5).all()


def test_validation():
    from repro.noise import IBM, NoiseModel

    noise = NoiseModel(hardware=IBM, p=1e-3)
    with pytest.raises(ValueError):
        multi_patch_surgery_experiment(
            MultiSurgerySpec(num_patches=1, distance=3, noise=noise)
        )
    with pytest.raises(ValueError):
        multi_patch_surgery_experiment(
            MultiSurgerySpec(num_patches=2, distance=3, noise=noise, timelines=(PatchTimeline.uniform(4),))
        )
