"""Lattice-surgery experiment-circuit tests."""

import numpy as np
import pytest

from repro.codes import OBS_JOINT, OBS_SINGLE, OBS_SINGLE_PP, SurgerySpec, surgery_experiment
from repro.stab import FrameSimulator, simulate_circuit
from repro.timing import PatchTimeline, RoundIdle


def _idle_instructions(circuit):
    return sum(1 for inst in circuit.instructions if inst.name == "PAULI_CHANNEL_1")


@pytest.mark.parametrize("ls_basis", ["X", "Z"])
def test_noiseless_determinism(ls_basis, ibm_noise):
    art = surgery_experiment(SurgerySpec(distance=3, noise=ibm_noise, ls_basis=ls_basis))
    clean = art.circuit.without_noise()
    for seed in range(4):
        _, det, obs = simulate_circuit(clean, seed)
        assert det.sum() == 0
        assert obs.sum() == 0


def test_decoded_basis_matches_ls_basis(ibm_noise):
    z = surgery_experiment(SurgerySpec(distance=3, noise=ibm_noise, ls_basis="Z"))
    x = surgery_experiment(SurgerySpec(distance=3, noise=ibm_noise, ls_basis="X"))
    assert z.detector_basis == "X"  # Z-basis LS measures X_P X_P'
    assert x.detector_basis == "Z"


def test_three_observables_defined(ibm_noise):
    art = surgery_experiment(SurgerySpec(distance=3, noise=ibm_noise))
    assert art.circuit.num_observables == 3
    obs = {}
    for inst in art.circuit.instructions:
        if inst.name == "OBSERVABLE_INCLUDE":
            obs.setdefault(inst.obs_index, set()).update(inst.rec)
    # joint = symmetric difference-free union of the two singles
    assert obs[OBS_JOINT] == obs[OBS_SINGLE] | obs[OBS_SINGLE_PP]
    assert len(obs[OBS_SINGLE]) == 3
    assert len(obs[OBS_SINGLE_PP]) == 3


def test_seam_detector_optional(ibm_noise):
    off = surgery_experiment(SurgerySpec(distance=3, noise=ibm_noise))
    on = surgery_experiment(
        SurgerySpec(distance=3, noise=ibm_noise, include_seam_detector=True)
    )
    assert off.seam_detector_index is None
    assert on.seam_detector_index is not None
    assert on.circuit.num_detectors == off.circuit.num_detectors + 1
    # the seam-product detector must itself be noiseless-deterministic
    clean = on.circuit.without_noise()
    for seed in range(3):
        _, det, _ = simulate_circuit(clean, seed)
        assert det[on.seam_detector_index] == 0


def test_detectors_by_round_labels(ibm_noise):
    d = 3
    art = surgery_experiment(SurgerySpec(distance=d, noise=ibm_noise))
    labels = sorted(art.detectors_by_round)
    # d+1 pre-merge rounds, d+1 merged rounds, final readout layer
    assert labels == list(range(2 * d + 3))
    total = sum(len(v) for v in art.detectors_by_round.values())
    assert total == art.circuit.num_detectors


def test_pre_merge_detector_counts(ibm_noise):
    d = 3
    art = surgery_experiment(SurgerySpec(distance=d, noise=ibm_noise))
    per_patch_checks = (d * d - 1) // 2
    for r in range(d + 1):
        assert len(art.detectors_by_round[r]) == 2 * per_patch_checks


def test_passive_slack_adds_one_idle_layer(google_noise):
    d = 3
    base = surgery_experiment(SurgerySpec(distance=d, noise=google_noise))
    tl = PatchTimeline.uniform(d + 1)
    tl.final_idle_ns = 700.0
    slacked = surgery_experiment(
        SurgerySpec(distance=d, noise=google_noise, timeline_p=tl)
    )
    assert _idle_instructions(slacked.circuit) == _idle_instructions(base.circuit) + 1


def test_active_slack_adds_idles_per_round(google_noise):
    d = 3
    base = surgery_experiment(SurgerySpec(distance=d, noise=google_noise))
    slacked = surgery_experiment(
        SurgerySpec(
            distance=d,
            noise=google_noise,
            timeline_p=PatchTimeline.uniform(d + 1, pre_ns=100.0),
        )
    )
    assert _idle_instructions(slacked.circuit) == _idle_instructions(base.circuit) + (d + 1)


def test_unequal_pre_merge_rounds_supported(google_noise):
    d = 3
    art = surgery_experiment(
        SurgerySpec(
            distance=d,
            noise=google_noise,
            timeline_p=PatchTimeline.uniform(d + 3),
            timeline_pp=PatchTimeline.uniform(d + 1, intra_ns=150.0),
        )
    )
    clean = art.circuit.without_noise()
    for seed in range(3):
        _, det, obs = simulate_circuit(clean, seed)
        assert det.sum() == 0 and obs.sum() == 0


def test_intra_round_idle_emitted(google_noise):
    d = 3
    tl = PatchTimeline(
        rounds=[RoundIdle()] * d + [RoundIdle(intra_ns=600.0)], final_idle_ns=0.0
    )
    art = surgery_experiment(SurgerySpec(distance=d, noise=google_noise, timeline_p=tl))
    base = surgery_experiment(SurgerySpec(distance=d, noise=google_noise))
    # six gap idles on the whole patch in the last pre-merge round
    assert _idle_instructions(art.circuit) == _idle_instructions(base.circuit) + 6


def test_idle_increases_detector_activity(google_noise):
    d = 3
    base = surgery_experiment(SurgerySpec(distance=d, noise=google_noise))
    tl = PatchTimeline.uniform(d + 1)
    tl.final_idle_ns = 1000.0
    slacked = surgery_experiment(SurgerySpec(distance=d, noise=google_noise, timeline_p=tl))
    det_base, _ = FrameSimulator(base.circuit).sample(4000, rng=3)
    det_slack, _ = FrameSimulator(slacked.circuit).sample(4000, rng=3)
    assert det_slack.mean() > det_base.mean()


def test_invalid_specs_rejected(ibm_noise):
    with pytest.raises(ValueError):
        surgery_experiment(SurgerySpec(distance=3, noise=ibm_noise, ls_basis="Y"))
    with pytest.raises(ValueError):
        surgery_experiment(SurgerySpec(distance=1, noise=ibm_noise))
