"""Detector-error-model extraction tests."""

import numpy as np
import pytest

from repro._util import combine_flip_probabilities
from repro.stab import Circuit, DemSampler, FrameSimulator, circuit_to_dem


def _rep_code_circuit(p=0.01, rounds=2, n=3):
    c = Circuit()
    data = list(range(n))
    anc = list(range(n, 2 * n - 1))
    c.append("R", data + anc)
    prev = []
    for r in range(rounds):
        c.append("X_ERROR", data, [p])
        c.append("CX", [q for i in range(n - 1) for q in (data[i], anc[i])])
        c.append("CX", [q for i in range(n - 1) for q in (data[i + 1], anc[i])])
        m = c.append("MR", anc)
        for k in range(n - 1):
            c.detector([m[k]] if r == 0 else [prev[k], m[k]], basis="Z")
        prev = m
    finals = c.append("M", data)
    for k in range(n - 1):
        c.detector([prev[k], finals[k], finals[k + 1]], basis="Z")
    c.observable_include(0, [finals[0]])
    return c


def test_repetition_code_dem_structure():
    dem = circuit_to_dem(_rep_code_circuit())
    # 3 data qubits x 2 rounds of X_ERROR -> 6 distinct mechanisms
    assert len(dem.errors) == 6
    sigs = {e.detectors for e in dem.errors}
    assert (0,) in sigs  # boundary-adjacent error, round 0
    assert (0, 1) in sigs  # middle qubit error
    obs_flips = [e for e in dem.errors if e.observables == (0,)]
    assert len(obs_flips) == 2  # qubit 0 in each round


def test_dem_probabilities_match_channel():
    dem = circuit_to_dem(_rep_code_circuit(p=0.02))
    for err in dem.errors:
        assert err.probability == pytest.approx(0.02, rel=1e-9)


def test_identical_signatures_merge():
    c = Circuit()
    c.append("R", [0])
    c.append("X_ERROR", [0], [0.1])
    c.append("X_ERROR", [0], [0.2])
    m = c.append("M", [0])
    c.detector(m)
    dem = circuit_to_dem(c)
    assert len(dem.errors) == 1
    assert dem.errors[0].probability == pytest.approx(
        combine_flip_probabilities([0.1, 0.2])
    )


def test_invisible_errors_dropped():
    c = Circuit()
    c.append("R", [0])
    c.append("Z_ERROR", [0], [0.5])  # never affects a Z measurement
    m = c.append("M", [0])
    c.detector(m)
    dem = circuit_to_dem(c)
    assert len(dem.errors) == 0


def test_chunked_extraction_matches_unchunked():
    circuit = _rep_code_circuit(rounds=3)
    full = circuit_to_dem(circuit, chunk_size=1_000_000)
    tiny = circuit_to_dem(circuit, chunk_size=3)
    key = lambda d: sorted((e.detectors, e.observables, round(e.probability, 12)) for e in d.errors)
    assert key(full) == key(tiny)


def test_min_probability_filter():
    c = Circuit()
    c.append("R", [0])
    c.append("X_ERROR", [0], [1e-7])
    m = c.append("M", [0])
    c.detector(m)
    assert len(circuit_to_dem(c, min_probability=1e-6).errors) == 0
    assert len(circuit_to_dem(c).errors) == 1


def test_filtered_restricts_and_remaps():
    c = Circuit()
    c.append("R", [0, 1])
    c.append("X_ERROR", [0], [0.1])
    c.append("X_ERROR", [1], [0.1])
    m = c.append("M", [0, 1])
    c.detector([m[0]], basis="Z")
    c.detector([m[1]], basis="X")  # artificial tag for the test
    dem = circuit_to_dem(c)
    z_only = dem.filtered("Z")
    assert z_only.num_detectors == 1
    assert all(e.detectors in ((), (0,)) for e in z_only.errors)


def test_dem_sampling_matches_frame_sampling():
    circuit = _rep_code_circuit(p=0.03, rounds=2)
    det_f, obs_f = FrameSimulator(circuit).sample(60000, rng=5)
    dem = circuit_to_dem(circuit)
    det_d, obs_d = DemSampler(dem).sample(60000, rng=6)
    assert np.allclose(det_f.mean(axis=0), det_d.mean(axis=0), atol=0.005)
    assert np.allclose(obs_f.mean(axis=0), obs_d.mean(axis=0), atol=0.005)


def test_depolarize2_components_visible():
    c = Circuit()
    c.append("R", [0, 1])
    c.append("DEPOLARIZE2", [0, 1], [0.15])
    m = c.append("M", [0, 1])
    c.detector([m[0]])
    c.detector([m[1]])
    dem = circuit_to_dem(c)
    sigs = {e.detectors for e in dem.errors}
    assert sigs == {(0,), (1,), (0, 1)}
    both = next(e for e in dem.errors if e.detectors == (0, 1))
    # 4 of 15 two-qubit Paulis flip both Z-measurements (XX, XY, YX, YY)
    assert both.probability == pytest.approx(
        combine_flip_probabilities([0.01] * 4), rel=1e-6
    )
