"""Cross-cutting hypothesis property tests on core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes import PatchLayout, other_basis
from repro.decoders import UnionFindDecoder, build_matching_graph, lut_weight_threshold
from repro.stab.dem import DemError, DetectorErrorModel
from repro.timing import PatchTimeline, RoundIdle


# --- layout properties --------------------------------------------------------


@given(
    d=st.integers(2, 8),
    v=st.sampled_from(["X", "Z"]),
    col0=st.integers(0, 5),
)
def test_patch_layout_invariants(d, v, col0):
    lay = PatchLayout(col0, col0 + d - 1, d, vertical_basis=v)
    counts = lay.stabilizer_counts()
    # stabilizer count pins the logical count to exactly one
    assert counts["X"] + counts["Z"] == d * d - 1
    # every plaquette stays within the patch and keeps 2 or 4 data qubits
    for p in lay.plaquettes:
        assert p.weight in (2, 4)
        for (i, j) in p.data:
            assert col0 <= i <= col0 + d - 1
            assert 0 <= j < d
    # CNOT slots never conflict within a layer
    for slot in range(4):
        used = [p.slots[slot] for p in lay.plaquettes if p.slots[slot] is not None]
        assert len(used) == len(set(used))


@given(d=st.integers(2, 6), v=st.sampled_from(["X", "Z"]))
def test_vertical_and_horizontal_logicals_intersect_once(d, v):
    lay = PatchLayout(0, d - 1, d, vertical_basis=v)
    vert = set(lay.vertical_logical())
    horiz = set(lay.horizontal_logical())
    assert len(vert & horiz) == 1


# --- matching-graph / union-find properties ---------------------------------------


@st.composite
def random_chain_dem(draw):
    n = draw(st.integers(2, 8))
    errors = [DemError(0.1, (0,), (0,))]
    for i in range(n - 1):
        errors.append(DemError(draw(st.floats(0.01, 0.3)), (i, i + 1), ()))
    errors.append(DemError(0.1, (n - 1,), ()))
    return DetectorErrorModel(
        errors=errors,
        num_detectors=n,
        num_observables=1,
        detector_coords=[()] * n,
        detector_basis=["Z"] * n,
    ), n


@given(random_chain_dem(), st.integers(0, 2**16 - 1))
@settings(max_examples=40, deadline=None)
def test_unionfind_always_terminates_and_is_deterministic(dem_n, seed):
    dem, n = dem_n
    graph = build_matching_graph(dem)
    decoder = UnionFindDecoder(graph)
    rng = np.random.default_rng(seed)
    syndrome = rng.random(n) < 0.4
    first = decoder.decode(syndrome)
    second = decoder.decode(syndrome)
    assert first == second
    assert first in (0, 1)


@given(random_chain_dem())
@settings(max_examples=20, deadline=None)
def test_empty_syndrome_always_trivial(dem_n):
    dem, n = dem_n
    decoder = UnionFindDecoder(build_matching_graph(dem))
    assert decoder.decode(np.zeros(n, dtype=bool)) == 0


# --- LUT threshold properties -----------------------------------------------------


@given(window=st.integers(1, 64), size=st.integers(1, 10**8))
def test_lut_threshold_bounds(window, size):
    t = lut_weight_threshold(window, size)
    assert 0 <= t <= window


@given(window=st.integers(4, 48))
def test_lut_threshold_monotone_in_budget(window):
    small = lut_weight_threshold(window, 1024)
    big = lut_weight_threshold(window, 1024 * 1024)
    assert big >= small


# --- timeline properties ---------------------------------------------------------


@given(
    rounds=st.integers(1, 20),
    pre=st.floats(0, 1000),
    intra=st.floats(0, 1000),
    final=st.floats(0, 1000),
)
def test_timeline_idle_accounting(rounds, pre, intra, final):
    tl = PatchTimeline.uniform(rounds, pre_ns=pre, intra_ns=intra, final_idle_ns=final)
    expected = rounds * (pre + intra) + final
    assert tl.total_idle_ns == pytest.approx(expected)


@given(pre=st.floats(0, 500), intra=st.floats(0, 500))
def test_round_idle_total_is_sum(pre, intra):
    assert RoundIdle(pre_ns=pre, intra_ns=intra).total_ns == pytest.approx(pre + intra)


# --- basis helpers ------------------------------------------------------------------


@given(b=st.sampled_from(["X", "Z"]))
def test_other_basis_involution(b):
    assert other_basis(other_basis(b)) == b
    assert other_basis(b) != b
