"""Dropout-repair model tests (Sec. 3.2.2)."""

import pytest

from repro.codes import PatchLayout
from repro.codes.defects import (
    DefectMap,
    repair_schedule,
    sample_defect_map,
)
from repro.core import SyncScenario, make_policy
from repro.noise import IBM


@pytest.fixture
def layout():
    return PatchLayout(0, 4, 5, vertical_basis="X")


def test_pristine_patch_has_no_extension(layout):
    sched = repair_schedule(layout, DefectMap())
    assert sched.extra_cnot_layers == 0
    assert sched.cycle_time_ns(IBM) == IBM.cycle_time_ns
    assert sched.affected_plaquettes == []


def test_broken_ancilla_costs_two_layers(layout):
    pos = layout.plaquettes[len(layout.plaquettes) // 2].pos
    sched = repair_schedule(layout, DefectMap(broken_ancilla=frozenset({pos})))
    assert sched.extra_cnot_layers == 2
    assert sched.affected_plaquettes == [pos]
    assert sched.cycle_extension_ns(IBM) == 2 * IBM.time_2q_ns


def test_broken_data_affects_adjacent_plaquettes(layout):
    coord = (2, 2)  # interior data qubit touches plaquettes on both bases
    sched = repair_schedule(layout, DefectMap(broken_data=frozenset({coord})))
    assert len(sched.affected_plaquettes) >= 2
    assert sched.extra_cnot_layers >= 1


def test_adjacent_defects_repair_concurrently(layout):
    # two ancillas in one cluster cost max(2,2)=2, not 4
    ps = [p.pos for p in layout.plaquettes if p.weight == 4]
    a = ps[0]
    neighbour = next(
        p for p in ps if p != a and abs(p[0] - a[0]) <= 1 and abs(p[1] - a[1]) <= 1
    )
    sched = repair_schedule(layout, DefectMap(broken_ancilla=frozenset({a, neighbour})))
    assert sched.num_clusters == 1
    assert sched.extra_cnot_layers == 2


def test_disjoint_defects_add_up(layout):
    far_apart = [(1, 1), (4, 4)]
    sched = repair_schedule(layout, DefectMap(broken_ancilla=frozenset(far_apart)))
    assert sched.num_clusters == 2
    assert sched.extra_cnot_layers == 4


def test_broken_coupler_costs_one_layer(layout):
    p = next(pl for pl in layout.plaquettes if pl.weight == 4)
    sched = repair_schedule(
        layout, DefectMap(broken_couplers=frozenset({(p.pos, p.data[0])}))
    )
    assert sched.extra_cnot_layers == 1


def test_sampled_defects_scale_with_probability(layout):
    none = sample_defect_map(layout, 0.0, rng=0)
    assert none.is_empty
    some = sample_defect_map(layout, 0.3, rng=0)
    assert not some.is_empty
    with pytest.raises(ValueError):
        sample_defect_map(layout, 1.5, rng=0)


def test_defective_cycle_feeds_synchronization(layout):
    """End-to-end: a dropout-extended patch defines a valid sync scenario."""
    pos = layout.plaquettes[3].pos
    sched = repair_schedule(layout, DefectMap(broken_ancilla=frozenset({pos})))
    scenario = SyncScenario(
        t_p_ns=IBM.cycle_time_ns,
        t_pp_ns=sched.cycle_time_ns(IBM),
        tau_ns=500.0,
        base_rounds=6,
    )
    plan = make_policy("hybrid", eps_ns=400.0, max_rounds=200).plan(scenario)
    assert plan.extra_rounds_p >= 1
    assert plan.idle_ns < 400.0
