"""Decode-kernel backend tests: registry, selection, and the parity matrix.

The backend contract is *bit-identity*: every registered backend must
produce exactly the predictions — and exactly the dedup-engine statistics —
of the ``python`` reference pass, for every decoder, across the full
``(d, p)`` grid.  Since the wrapped and hybrid paths gained kernels, the
matrix also asserts the predecoder's offload statistics
(:class:`PredecodeStats`) match the scalar pass bit for bit.  The batched
union-find kernel is additionally fuzzed on random syndrome matrices (where
cluster growth and peeling interact far more than at physical error rates)
and exercised across block boundaries; backend *degradation* (missing soft
dependencies) is tested by monkeypatching the imports away.
"""

import builtins

import numpy as np
import pytest

from conftest import build_dense_syndromes
from repro.codes.repetition import repetition_experiment
from repro.decoders import (
    BatchDecodingEngine,
    HierarchicalDecoder,
    LookupTableDecoder,
    MWPMDecoder,
    PredecodedDecoder,
    SyndromeCache,
    UnionFindDecoder,
    build_matching_graph,
    kernels,
)
from repro.decoders.kernels import (
    AUTO_ORDER,
    BatchedHierarchical,
    BatchedMWPM,
    BatchedPredecode,
    BatchedUnionFind,
    KernelBackend,
    NumbaBackend,
    NumpyBackend,
    PythonBackend,
)
from repro.noise import GOOGLE, NoiseModel
from repro.stab import DemSampler, circuit_to_dem


# ---------------------------------------------------------------------------
# registry and selection
# ---------------------------------------------------------------------------


def test_builtin_backends_registered():
    assert {"python", "numpy", "numba"} <= set(kernels.names())
    assert "python" in kernels.available()
    assert "numpy" in kernels.available()  # numpy is a hard dependency


def test_get_unknown_backend_is_a_clear_error():
    with pytest.raises(KeyError, match="no-such-backend"):
        kernels.get("no-such-backend")


def test_resolve_explicit_and_auto():
    assert kernels.resolve("python").name == "python"
    assert kernels.resolve("numpy").name == "numpy"
    auto = kernels.resolve("auto")
    assert auto.name in AUTO_ORDER
    assert auto.available()


def test_resolve_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_DECODE_BACKEND", "python")
    assert kernels.resolve(None).name == "python"
    monkeypatch.setenv("REPRO_DECODE_BACKEND", "")
    assert kernels.resolve(None).available()


def test_capability_flags():
    assert kernels.capabilities("python") == frozenset()
    assert kernels.capabilities("numpy") == {
        "unionfind",
        "predecoded",
        "hierarchical",
        "mwpm",
    }
    # resolution first: the flags reported for numba are those of the
    # backend actually used (numba itself when importable, else numpy) —
    # identical sets either way
    assert kernels.capabilities("numba") == kernels.capabilities("numpy")


def test_register_custom_backend_and_replace_guard():
    class _Null(KernelBackend):
        name = "test-null"

    kernels.register(_Null())
    try:
        assert "test-null" in kernels.names()
        assert kernels.resolve("test-null").name == "test-null"
        with pytest.raises(ValueError):
            kernels.register(_Null())
        kernels.register(_Null(), replace=True)
        with pytest.raises(ValueError):
            kernels.register(KernelBackend())  # empty name
    finally:
        kernels._REGISTRY.pop("test-null", None)


def test_python_backend_binds_nothing(parity_grid):
    graph, _ = parity_grid[(3, 2e-3)]
    assert PythonBackend().bind(UnionFindDecoder(graph)) is None


def test_numpy_backend_binds_every_stock_decoder_family(parity_grid):
    graph, _ = parity_grid[(3, 2e-3)]
    backend = NumpyBackend()
    dec = UnionFindDecoder(graph)
    kernel = backend.bind(dec)
    assert isinstance(kernel, BatchedUnionFind)
    assert backend.bind(dec) is kernel  # cached per decoder instance

    wrapped = PredecodedDecoder(graph, UnionFindDecoder(graph))
    pk = backend.bind(wrapped)
    assert isinstance(pk, BatchedPredecode)
    # predecode-kernel -> inner-decoder kernel composition
    assert isinstance(pk.inner, BatchedUnionFind)
    assert pk.inner is backend.bind(wrapped.slow)

    hier = HierarchicalDecoder(graph, lut_size_bytes=4096)
    hk = backend.bind(hier)
    assert isinstance(hk, BatchedHierarchical)
    assert isinstance(hk.inner, BatchedUnionFind)

    assert isinstance(backend.bind(MWPMDecoder(graph)), BatchedMWPM)
    # a predecoder over MWPM composes with the MWPM kernel
    over_mwpm = PredecodedDecoder(graph, MWPMDecoder(graph))
    assert isinstance(backend.bind(over_mwpm).inner, BatchedMWPM)
    # the LUT decoder stays scalar under every backend
    assert backend.bind(LookupTableDecoder(graph, max_errors=1)) is None


def test_numpy_backend_skips_overridden_decode_paths(parity_grid):
    graph, _ = parity_grid[(3, 2e-3)]
    backend = NumpyBackend()

    class _CountingUF(UnionFindDecoder):
        def decode(self, detectors):
            return super().decode(detectors)

    class _CountingPre(PredecodedDecoder):
        def _decode_rows(self, rows, counts):
            return super()._decode_rows(rows, counts)

    class _CountingMWPM(MWPMDecoder):
        def _decode_defects(self, defects):
            return super()._decode_defects(defects)

    assert backend.bind(_CountingUF(graph)) is None
    assert backend.bind(_CountingPre(graph, UnionFindDecoder(graph))) is None
    assert backend.bind(_CountingMWPM(graph)) is None
    # ... but a stock wrapper around an overridden inner decoder still gets
    # the predecode kernel, with the inner rows falling back to scalar
    wrapped = PredecodedDecoder(graph, _CountingUF(graph))
    kernel = backend.bind(wrapped)
    assert isinstance(kernel, BatchedPredecode)
    assert kernel.inner is None


def test_numba_backend_jit_flag_degrades(parity_grid):
    graph, _ = parity_grid[(3, 2e-3)]
    kernel = NumbaBackend().bind(UnionFindDecoder(graph))
    assert isinstance(kernel, BatchedUnionFind)
    try:
        import numba  # noqa: F401

        assert kernel.jitted  # pragma: no cover - numba present
    except ImportError:
        assert not kernel.jitted  # silently fell back to the numpy chase


# ---------------------------------------------------------------------------
# backend degradation: missing soft dependencies
# ---------------------------------------------------------------------------


def test_missing_numba_reports_honestly_and_degrades(monkeypatch):
    real_import = builtins.__import__

    def no_numba(name, *args, **kwargs):
        if name == "numba":
            raise ImportError("numba is not installed")
        return real_import(name, *args, **kwargs)

    monkeypatch.setattr(builtins, "__import__", no_numba)
    assert not kernels.get("numba").available()
    assert "numba" not in kernels.available()
    assert kernels.resolve("numba").name == "numpy"
    assert kernels.resolve("auto").name == "numpy"


def test_fallback_chain_walks_numba_numpy_python(monkeypatch):
    real_import = builtins.__import__

    def no_numba(name, *args, **kwargs):
        if name == "numba":
            raise ImportError("numba is not installed")
        return real_import(name, *args, **kwargs)

    monkeypatch.setattr(builtins, "__import__", no_numba)
    monkeypatch.setattr(NumpyBackend, "available", lambda self: False)
    assert kernels.available() == ["python"]
    # the two-hop chain: numba -> numpy -> python
    assert kernels.resolve("numba").name == "python"
    assert kernels.resolve("numpy").name == "python"
    assert kernels.resolve("auto").name == "python"
    assert kernels.capabilities("numpy") == frozenset()


def test_degradation_warns_once_per_process_naming_the_fallback(monkeypatch):
    """CI logs must show which backend actually ran the parity matrix."""
    import warnings

    real_import = builtins.__import__

    def no_numba(name, *args, **kwargs):
        if name == "numba":
            raise ImportError("numba is not installed")
        return real_import(name, *args, **kwargs)

    monkeypatch.setattr(builtins, "__import__", no_numba)
    monkeypatch.setattr(kernels, "_FALLBACK_WARNED", set())
    with pytest.warns(RuntimeWarning, match="'numba'.*falling back to 'numpy'"):
        assert kernels.resolve("numba").name == "numpy"
    # second resolution of the same degradation is quiet (once per process)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert kernels.resolve("numba").name == "numpy"
        # available backends and `auto` never warn
        assert kernels.resolve("auto").name == "numpy"
        assert kernels.resolve("numpy").name == "numpy"
    # a *different* degradation pair warns again
    monkeypatch.setattr(NumpyBackend, "available", lambda self: False)
    with pytest.warns(RuntimeWarning, match="falling back to 'python'"):
        assert kernels.resolve("numba").name == "python"


def test_degraded_backend_still_decodes_identically(parity_grid, monkeypatch):
    graph, det = parity_grid[(3, 2e-3)]
    reference = BatchDecodingEngine(
        UnionFindDecoder(graph), backend="python"
    ).decode_batch(det)
    monkeypatch.setattr(NumpyBackend, "available", lambda self: False)
    degraded = BatchDecodingEngine(
        UnionFindDecoder(graph), backend="numba"
    ).decode_batch(det)
    assert np.array_equal(degraded, reference)


# ---------------------------------------------------------------------------
# the parity matrix: backend x decoder x (d, p)
# ---------------------------------------------------------------------------


def _build(factory, graph):
    if factory == "unionfind":
        return UnionFindDecoder(graph)
    if factory == "mwpm":
        return MWPMDecoder(graph)
    if factory == "predecoded":
        return PredecodedDecoder(graph, UnionFindDecoder(graph))
    return HierarchicalDecoder(graph, lut_size_bytes=4096)


def _stat_counters(engine):
    counters = vars(engine.stats).copy()
    counters.pop("decode_seconds")  # wall time: the only non-deterministic stat
    return counters


@pytest.mark.parametrize("point", [(3, 2e-3), (3, 5e-3), (5, 1e-3)])
@pytest.mark.parametrize("factory", ["unionfind", "mwpm", "predecoded", "hierarchical"])
def test_backend_parity_matrix(parity_grid, backend_names, point, factory):
    graph, det = parity_grid[point]
    if factory != "unionfind":
        det = det[:400]  # slow decoders decode a thinner slice of each point
    reference = ref_counters = ref_predecode = None
    for name in backend_names:
        decoder = _build(factory, graph)
        engine = BatchDecodingEngine(decoder, backend=name)
        predictions = engine.decode_batch(det)
        counters = _stat_counters(engine)
        predecode = vars(decoder.stats).copy() if factory == "predecoded" else None
        if reference is None:  # the python reference pass comes first
            reference, ref_counters, ref_predecode = predictions, counters, predecode
        else:
            assert np.array_equal(predictions, reference), (
                f"backend {name!r} diverged from python for {factory} at {point}"
            )
            assert counters == ref_counters, (
                f"backend {name!r} stats diverged from python for {factory} at {point}"
            )
            assert predecode == ref_predecode, (
                f"backend {name!r} PredecodeStats diverged for {factory} at {point}"
            )


def test_backend_parity_lut_decoder(backend_names):
    noise = NoiseModel(hardware=GOOGLE, p=1e-2)
    art = repetition_experiment(3, 2, noise)
    graph = build_matching_graph(circuit_to_dem(art.circuit), basis="Z")
    det, _ = DemSampler(circuit_to_dem(art.circuit)).sample(500, rng=17)
    reference = None
    for name in backend_names:
        engine = BatchDecodingEngine(LookupTableDecoder(graph, max_errors=4), backend=name)
        predictions = engine.decode_batch(det)
        if reference is None:
            reference = predictions
        else:
            assert np.array_equal(predictions, reference)


@pytest.mark.parametrize("factory", ["unionfind", "mwpm", "hierarchical"])
def test_backend_parity_with_memo_cache(parity_grid, factory):
    """Kernel + cache partitions hits/misses exactly like the scalar pass."""
    graph, det = parity_grid[(3, 5e-3)]
    batches = [det[:300], det[150:450], det[:300]]
    engines = {
        name: BatchDecodingEngine(
            _build(factory, graph), cache_size=1 << 14, backend=name
        )
        for name in ("python", "numpy")
    }
    for batch in batches:
        out = {n: e.decode_batch(batch) for n, e in engines.items()}
        assert np.array_equal(out["python"], out["numpy"])
    assert _stat_counters(engines["python"]) == _stat_counters(engines["numpy"])
    assert engines["numpy"].stats.cache_hits > 0


def test_injected_shared_cache_serves_kernel_path(parity_grid):
    graph, det = parity_grid[(3, 2e-3)]
    shared = SyndromeCache(1 << 14)
    first = BatchDecodingEngine(UnionFindDecoder(graph), cache=shared, backend="numpy")
    first.decode_batch(det[:400])
    second = BatchDecodingEngine(UnionFindDecoder(graph), cache=shared, backend="numpy")
    out = second.decode_batch(det[:400])
    assert second.stats.cache_misses == 0
    assert second.stats.decode_calls == 0
    assert np.array_equal(out, first.decode_batch(det[:400]))


# ---------------------------------------------------------------------------
# the batched union-find kernel itself
# ---------------------------------------------------------------------------


def test_kernel_fuzz_on_random_syndromes(parity_grid):
    """Random dense syndromes: growth collisions, give-ups, big clusters."""
    graph, _ = parity_grid[(3, 2e-3)]
    dec = UnionFindDecoder(graph)
    kernel = BatchedUnionFind(dec, block_rows=37)  # force odd block splits
    for density in (0.01, 0.05, 0.2, 0.5):
        det = build_dense_syndromes(graph, 300, density, seed=int(density * 1000) + 99)
        reference = np.array(
            [dec.decode(det[i]) for i in range(det.shape[0])], dtype=np.uint64
        )
        assert np.array_equal(kernel.decode_rows(det), reference), density


def test_kernel_handles_empty_and_all_zero_input(parity_grid):
    graph, _ = parity_grid[(3, 2e-3)]
    kernel = BatchedUnionFind(UnionFindDecoder(graph))
    empty = kernel.decode_rows(np.zeros((0, graph.num_detectors), dtype=bool))
    assert empty.shape == (0,)
    zeros = kernel.decode_rows(np.zeros((5, graph.num_detectors), dtype=bool))
    assert not zeros.any()


@pytest.mark.parametrize(
    "make_kernel",
    [
        lambda g: BatchedUnionFind(UnionFindDecoder(g)),
        lambda g: BatchedMWPM(MWPMDecoder(g)),
        lambda g: BatchedPredecode(PredecodedDecoder(g, UnionFindDecoder(g))),
        lambda g: BatchedHierarchical(HierarchicalDecoder(g, lut_size_bytes=4096)),
    ],
)
def test_kernels_reject_bad_shapes(parity_grid, make_kernel):
    graph, _ = parity_grid[(3, 2e-3)]
    kernel = make_kernel(graph)
    with pytest.raises(ValueError):
        kernel.decode_rows(np.zeros(graph.num_detectors, dtype=bool))
    with pytest.raises(ValueError):
        kernel.decode_rows(np.zeros((3, graph.num_detectors + 1), dtype=bool))


def test_kernel_block_boundaries_do_not_change_results(parity_grid):
    graph, det = parity_grid[(3, 5e-3)]
    dec = UnionFindDecoder(graph)
    whole = BatchedUnionFind(dec, block_rows=1 << 20).decode_rows(det[:500])
    for block in (1, 7, 64, 499, 500):
        split = BatchedUnionFind(dec, block_rows=block).decode_rows(det[:500])
        assert np.array_equal(split, whole), block


def test_mwpm_kernel_dijkstra_cache_is_stable_across_batches(parity_grid):
    """Rows served from the cached Dijkstra tables equal fresh decodes."""
    graph, det = parity_grid[(3, 5e-3)]
    dec = MWPMDecoder(graph)
    kernel = BatchedMWPM(dec)
    first = kernel.decode_rows(det[:200])
    again = kernel.decode_rows(det[:200])  # now fully from the node cache
    assert np.array_equal(first, again)
    fresh = BatchedMWPM(MWPMDecoder(graph)).decode_rows(det[:200])
    assert np.array_equal(first, fresh)


# ---------------------------------------------------------------------------
# the scalar decoder's reentrancy guard
# ---------------------------------------------------------------------------


def test_unionfind_reentrant_use_raises(parity_grid):
    graph, det = parity_grid[(3, 2e-3)]

    class _Reentrant(UnionFindDecoder):
        def _peel(self, defects, solid):
            # simulate a concurrent/recursive decode on the same instance
            self.decode(np.ones(self.graph.num_detectors, dtype=bool))
            return super()._peel(defects, solid)

    dec = _Reentrant(graph)
    syndrome = det[det.any(axis=1)][0]
    with pytest.raises(RuntimeError, match="not reentrant"):
        dec.decode(syndrome)
    # the guard must reset: a clean decode afterwards works
    assert UnionFindDecoder(graph).decode(syndrome) == _clean_decode(graph, syndrome)
    assert dec.decode(np.zeros(graph.num_detectors, dtype=bool)) == 0


def _clean_decode(graph, syndrome):
    return UnionFindDecoder(graph).decode(syndrome)
