"""Decode-kernel backend tests: registry, selection, and the parity matrix.

The backend contract is *bit-identity*: every registered backend must
produce exactly the predictions — and exactly the dedup-engine statistics —
of the ``python`` reference pass, for every decoder, across a small
``(d, p)`` grid.  The batched union-find kernel is additionally fuzzed on
random syndrome matrices (where cluster growth and peeling interact far
more than at physical error rates) and exercised across block boundaries.
"""

import numpy as np
import pytest

from repro.codes import memory_experiment
from repro.codes.repetition import repetition_experiment
from repro.decoders import (
    BatchDecodingEngine,
    LookupTableDecoder,
    MWPMDecoder,
    PredecodedDecoder,
    SyndromeCache,
    UnionFindDecoder,
    build_matching_graph,
    kernels,
)
from repro.decoders.hierarchical import HierarchicalDecoder
from repro.decoders.kernels import (
    AUTO_ORDER,
    BatchedUnionFind,
    KernelBackend,
    NumbaBackend,
    NumpyBackend,
    PythonBackend,
)
from repro.noise import GOOGLE, NoiseModel
from repro.stab import DemSampler, circuit_to_dem


def _surface(d, p, shots, rng):
    noise = NoiseModel(hardware=GOOGLE, p=p, idle_scale=0.0)
    art = memory_experiment(d, d, noise)
    dem = circuit_to_dem(art.circuit)
    graph = build_matching_graph(dem, basis="Z")
    det, _ = DemSampler(dem).sample(shots, rng=rng)
    return graph, det


@pytest.fixture(scope="module")
def grid():
    """Small (d, p) grid shared by the parity matrix."""
    return {
        (3, 2e-3): _surface(3, 2e-3, 800, rng=31),
        (3, 5e-3): _surface(3, 5e-3, 800, rng=32),
        (5, 1e-3): _surface(5, 1e-3, 800, rng=33),
    }


# ---------------------------------------------------------------------------
# registry and selection
# ---------------------------------------------------------------------------


def test_builtin_backends_registered():
    assert {"python", "numpy", "numba"} <= set(kernels.names())
    assert "python" in kernels.available()
    assert "numpy" in kernels.available()  # numpy is a hard dependency


def test_get_unknown_backend_is_a_clear_error():
    with pytest.raises(KeyError, match="no-such-backend"):
        kernels.get("no-such-backend")


def test_resolve_explicit_and_auto():
    assert kernels.resolve("python").name == "python"
    assert kernels.resolve("numpy").name == "numpy"
    auto = kernels.resolve("auto")
    assert auto.name in AUTO_ORDER
    assert auto.available()


def test_resolve_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_DECODE_BACKEND", "python")
    assert kernels.resolve(None).name == "python"
    monkeypatch.setenv("REPRO_DECODE_BACKEND", "")
    assert kernels.resolve(None).available()


def test_numba_degrades_silently_to_numpy_when_missing():
    backend = kernels.get("numba")
    resolved = kernels.resolve("numba")
    if backend.available():  # pragma: no cover - numba present
        assert resolved is backend
    else:
        assert resolved.name == "numpy"


def test_register_custom_backend_and_replace_guard():
    class _Null(KernelBackend):
        name = "test-null"

    kernels.register(_Null())
    try:
        assert "test-null" in kernels.names()
        assert kernels.resolve("test-null").name == "test-null"
        with pytest.raises(ValueError):
            kernels.register(_Null())
        kernels.register(_Null(), replace=True)
        with pytest.raises(ValueError):
            kernels.register(KernelBackend())  # empty name
    finally:
        kernels._REGISTRY.pop("test-null", None)


def test_python_backend_binds_nothing(grid):
    graph, _ = grid[(3, 2e-3)]
    assert PythonBackend().bind(UnionFindDecoder(graph)) is None


def test_numpy_backend_binds_only_stock_unionfind(grid):
    graph, _ = grid[(3, 2e-3)]
    backend = NumpyBackend()
    dec = UnionFindDecoder(graph)
    kernel = backend.bind(dec)
    assert isinstance(kernel, BatchedUnionFind)
    assert backend.bind(dec) is kernel  # cached per decoder instance
    assert backend.bind(MWPMDecoder(graph)) is None

    class _Counting(UnionFindDecoder):
        def decode(self, detectors):
            return super().decode(detectors)

    # overridden decode paths must keep their scalar pass
    assert backend.bind(_Counting(graph)) is None


def test_numba_backend_jit_flag_degrades(grid):
    graph, _ = grid[(3, 2e-3)]
    kernel = NumbaBackend().bind(UnionFindDecoder(graph))
    assert isinstance(kernel, BatchedUnionFind)
    try:
        import numba  # noqa: F401

        assert kernel.jitted  # pragma: no cover - numba present
    except ImportError:
        assert not kernel.jitted  # silently fell back to the numpy chase


# ---------------------------------------------------------------------------
# the parity matrix: backend x decoder x (d, p)
# ---------------------------------------------------------------------------


def _build(factory, graph):
    if factory == "unionfind":
        return UnionFindDecoder(graph)
    if factory == "mwpm":
        return MWPMDecoder(graph)
    if factory == "predecoder":
        return PredecodedDecoder(graph, UnionFindDecoder(graph))
    return HierarchicalDecoder(graph, lut_size_bytes=4096)


def _stat_counters(engine):
    counters = vars(engine.stats).copy()
    counters.pop("decode_seconds")  # wall time: the only non-deterministic stat
    return counters


@pytest.mark.parametrize("point", [(3, 2e-3), (3, 5e-3), (5, 1e-3)])
@pytest.mark.parametrize("factory", ["unionfind", "mwpm", "predecoder", "hierarchical"])
def test_backend_parity_matrix(grid, point, factory):
    graph, det = grid[point]
    if factory != "unionfind":
        if point == (5, 1e-3):
            pytest.skip("slow decoders run the d=3 slice of the grid")
        det = det[:400]
    reference = None
    ref_counters = None
    order = ["python"] + [n for n in kernels.names() if n != "python"]
    for name in order:
        engine = BatchDecodingEngine(_build(factory, graph), backend=name)
        predictions = engine.decode_batch(det)
        counters = _stat_counters(engine)
        if reference is None:  # the python reference pass comes first
            reference, ref_counters = predictions, counters
        else:
            assert np.array_equal(predictions, reference), (
                f"backend {name!r} diverged from python for {factory} at {point}"
            )
            assert counters == ref_counters, (
                f"backend {name!r} stats diverged from python for {factory} at {point}"
            )


def test_backend_parity_lut_decoder():
    noise = NoiseModel(hardware=GOOGLE, p=1e-2)
    art = repetition_experiment(3, 2, noise)
    graph = build_matching_graph(circuit_to_dem(art.circuit), basis="Z")
    det, _ = DemSampler(circuit_to_dem(art.circuit)).sample(500, rng=17)
    reference = None
    for name in ["python"] + [n for n in kernels.names() if n != "python"]:
        engine = BatchDecodingEngine(LookupTableDecoder(graph, max_errors=4), backend=name)
        predictions = engine.decode_batch(det)
        if reference is None:
            reference = predictions
        else:
            assert np.array_equal(predictions, reference)


def test_backend_parity_with_memo_cache(grid):
    """Kernel + cache partitions hits/misses exactly like the scalar pass."""
    graph, det = grid[(3, 5e-3)]
    batches = [det[:300], det[150:450], det[:300]]
    engines = {
        name: BatchDecodingEngine(
            UnionFindDecoder(graph), cache_size=1 << 14, backend=name
        )
        for name in ("python", "numpy")
    }
    for batch in batches:
        out = {n: e.decode_batch(batch) for n, e in engines.items()}
        assert np.array_equal(out["python"], out["numpy"])
    assert _stat_counters(engines["python"]) == _stat_counters(engines["numpy"])
    assert engines["numpy"].stats.cache_hits > 0


def test_injected_shared_cache_serves_kernel_path(grid):
    graph, det = grid[(3, 2e-3)]
    shared = SyndromeCache(1 << 14)
    first = BatchDecodingEngine(UnionFindDecoder(graph), cache=shared, backend="numpy")
    first.decode_batch(det[:400])
    second = BatchDecodingEngine(UnionFindDecoder(graph), cache=shared, backend="numpy")
    out = second.decode_batch(det[:400])
    assert second.stats.cache_misses == 0
    assert second.stats.decode_calls == 0
    assert np.array_equal(out, first.decode_batch(det[:400]))


# ---------------------------------------------------------------------------
# the batched union-find kernel itself
# ---------------------------------------------------------------------------


def test_kernel_fuzz_on_random_syndromes(grid):
    """Random dense syndromes: growth collisions, give-ups, big clusters."""
    graph, _ = grid[(3, 2e-3)]
    dec = UnionFindDecoder(graph)
    kernel = BatchedUnionFind(dec, block_rows=37)  # force odd block splits
    rng = np.random.default_rng(99)
    for density in (0.01, 0.05, 0.2, 0.5):
        det = rng.random((300, graph.num_detectors)) < density
        reference = np.array(
            [dec.decode(det[i]) for i in range(det.shape[0])], dtype=np.uint64
        )
        assert np.array_equal(kernel.decode_rows(det), reference), density


def test_kernel_handles_empty_and_all_zero_input(grid):
    graph, _ = grid[(3, 2e-3)]
    kernel = BatchedUnionFind(UnionFindDecoder(graph))
    empty = kernel.decode_rows(np.zeros((0, graph.num_detectors), dtype=bool))
    assert empty.shape == (0,)
    zeros = kernel.decode_rows(np.zeros((5, graph.num_detectors), dtype=bool))
    assert not zeros.any()


def test_kernel_rejects_bad_shapes(grid):
    graph, _ = grid[(3, 2e-3)]
    kernel = BatchedUnionFind(UnionFindDecoder(graph))
    with pytest.raises(ValueError):
        kernel.decode_rows(np.zeros(graph.num_detectors, dtype=bool))
    with pytest.raises(ValueError):
        kernel.decode_rows(np.zeros((3, graph.num_detectors + 1), dtype=bool))


def test_kernel_block_boundaries_do_not_change_results(grid):
    graph, det = grid[(3, 5e-3)]
    dec = UnionFindDecoder(graph)
    whole = BatchedUnionFind(dec, block_rows=1 << 20).decode_rows(det[:500])
    for block in (1, 7, 64, 499, 500):
        split = BatchedUnionFind(dec, block_rows=block).decode_rows(det[:500])
        assert np.array_equal(split, whole), block


# ---------------------------------------------------------------------------
# the scalar decoder's reentrancy guard
# ---------------------------------------------------------------------------


def test_unionfind_reentrant_use_raises(grid):
    graph, det = grid[(3, 2e-3)]

    class _Reentrant(UnionFindDecoder):
        def _peel(self, defects, solid):
            # simulate a concurrent/recursive decode on the same instance
            self.decode(np.ones(self.graph.num_detectors, dtype=bool))
            return super()._peel(defects, solid)

    dec = _Reentrant(graph)
    syndrome = det[det.any(axis=1)][0]
    with pytest.raises(RuntimeError, match="not reentrant"):
        dec.decode(syndrome)
    # the guard must reset: a clean decode afterwards works
    assert UnionFindDecoder(graph).decode(syndrome) == _clean_decode(graph, syndrome)
    assert dec.decode(np.zeros(graph.num_detectors, dtype=bool)) == 0


def _clean_decode(graph, syndrome):
    return UnionFindDecoder(graph).decode(syndrome)
