"""Fast figure-driver tests (pure arithmetic / tiny Monte-Carlo figures)."""

import numpy as np
import pytest

from repro.experiments.figures import (
    SHERBROOKE,
    fig1d_tcount_headroom,
    fig4a_cultivation_slack,
    fig4b_qldpc_slack,
    fig6_dd_fidelity,
    fig10_extra_rounds_configs,
    fig11_hybrid_heatmap,
    fig20_engine_scaling,
    table5_neutral_atom_rounds,
)


def test_fig10_matches_paper_values():
    rows = fig10_extra_rounds_configs()
    assert [r["extra_rounds"] for r in rows] == [None, 5, 11, 22, 26, 52, 34, 68]


def test_fig11_eps400_superset_of_eps100():
    grids = fig11_hybrid_heatmap(
        eps_values=(100, 400), t_pp_values=(1050, 1150, 1325), tau_values=range(100, 1200, 100)
    )
    for key, z100 in grids[100].items():
        if z100 is not None:
            assert grids[400][key] is not None
            assert grids[400][key] <= z100


def test_fig1d_headroom():
    assert fig1d_tcount_headroom(2.4e-3, 1e-3) == pytest.approx(2.4)
    with pytest.raises(ValueError):
        fig1d_tcount_headroom(1e-3, 0.0)


def test_fig4a_structure():
    data = fig4a_cultivation_slack(shots=5000, rng=0)
    assert set(data) == {(hw, p) for hw in ("ibm", "google") for p in (5e-4, 1e-3)}
    for dist in data.values():
        assert dist.samples_ns.shape == (5000,)


def test_fig4b_structure():
    data = fig4b_qldpc_slack(rounds=10)
    assert set(data) == {"ibm", "google"}
    assert all(len(v) == 11 for v in data.values())


def test_fig6_monotone_in_windows():
    data = fig6_dd_fidelity(idle_periods_us=(1.6, 3.2), n_values=(5, 50))
    for rows in data.values():
        for row in rows:
            assert row["active"] >= row["passive"]


def test_fig20_scaling_rows():
    data = fig20_engine_scaling(patch_counts=(2, 10), repeats=20, rng=1)
    assert [r["patches"] for r in data["timing"]] == [2, 10]
    assert all(r["cpu_time_s"] > 0 for r in data["timing"])
    assert len(data["max_concurrent_cnots"]) == 6


def test_table5_rows_complete():
    rows = table5_neutral_atom_rounds(taus_ms=(0.2, 1.0), eps_values_ms=(0.1, 0.4))
    assert len(rows) == 4
    assert all(r["mean_extra_rounds"] is not None for r in rows)


def test_sherbrooke_preset_matches_footnote():
    assert SHERBROOKE.t1_ns == pytest.approx(330_770.0)
    assert SHERBROOKE.t2_ns == pytest.approx(72_680.0)
