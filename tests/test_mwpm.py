"""Exact MWPM decoder tests.

Graphs are built through the shared ``dem_graph`` factory in ``conftest.py``.
"""

import numpy as np

from repro.decoders import MWPMDecoder
from repro.decoders.kernels import BatchedMWPM


def test_empty_syndrome(dem_graph):
    g = dem_graph([(0.1, (0, 1), ())], 2)
    assert MWPMDecoder(g).decode(np.zeros(2, dtype=bool)) == 0


def test_pairs_matched_along_shortest_path(dem_graph):
    # chain of 4 detectors; defects at the ends must match through the middle
    g = dem_graph(
        [
            (0.1, (0, 1), (0,)),
            (0.1, (1, 2), ()),
            (0.1, (2, 3), (0,)),
            (0.001, (0,), ()),
            (0.001, (3,), ()),
        ],
        4,
    )
    dec = MWPMDecoder(g)
    syndrome = np.array([True, False, False, True])
    # path 0-1-2-3 flips the observable twice -> prediction 0
    assert dec.decode(syndrome) == 0


def test_boundary_matching_when_cheaper(dem_graph):
    g = dem_graph(
        [
            (0.001, (0, 1), ()),  # expensive internal edge
            (0.4, (0,), (0,)),  # cheap boundary edges
            (0.4, (1,), ()),
        ],
        2,
    )
    dec = MWPMDecoder(g)
    # both defects go to the boundary; only one crosses the observable
    assert dec.decode(np.array([True, True])) == 1


def test_odd_defect_count_uses_boundary(dem_graph):
    g = dem_graph([(0.1, (0, 1), (0,)), (0.2, (0,), ()), (0.2, (1,), (0,))], 2)
    dec = MWPMDecoder(g)
    assert dec.decode(np.array([True, False])) in (0, 1)  # defined behaviour
    # single defect at 1: boundary edge flips obs
    assert dec.decode(np.array([False, True])) == 1


def test_path_observable_parity_accumulates(dem_graph):
    g = dem_graph(
        [
            (0.1, (0, 1), (0,)),
            (0.1, (1, 2), (0,)),
        ],
        3,
    )
    dec = MWPMDecoder(g)
    # defects at 0 and 2: path crosses two obs-flipping edges -> cancel
    assert dec.decode(np.array([True, False, True])) == 0


def test_decode_batch_shape(dem_graph):
    g = dem_graph([(0.1, (0, 1), (0,)), (0.1, (0,), ()), (0.1, (1,), ())], 2)
    dec = MWPMDecoder(g)
    rng = np.random.default_rng(1)
    dets = rng.random((20, 2)) < 0.5
    out = dec.decode_batch(dets)
    assert out.shape == (20, 1)


def test_batched_kernel_matches_scalar_exhaustively(dem_graph):
    # every syndrome of a 5-detector graph with chords and parallel edges
    g = dem_graph(
        [
            (0.1, (0, 1), (0,)),
            (0.2, (1, 2), ()),
            (0.05, (2, 3), (0,)),
            (0.15, (3, 4), ()),
            (0.02, (0, 2), (1,)),
            (0.12, (1, 3), ()),
            (0.3, (0,), ()),
            (0.25, (4,), (1,)),
        ],
        5,
        nobs=2,
    )
    dec = MWPMDecoder(g)
    rows = np.array(
        [[bool(v >> i & 1) for i in range(5)] for v in range(32)], dtype=bool
    )
    kernel = BatchedMWPM(dec)
    out = kernel.decode_rows(rows)
    for i in range(rows.shape[0]):
        assert int(out[i]) == dec.decode(rows[i]), rows[i]
