"""Exact MWPM decoder tests."""

import numpy as np
import pytest

from repro.decoders import MWPMDecoder, build_matching_graph
from repro.stab.dem import DemError, DetectorErrorModel


def _graph(errors, ndet, nobs=1):
    return build_matching_graph(
        DetectorErrorModel(
            errors=[DemError(p, d, o) for p, d, o in errors],
            num_detectors=ndet,
            num_observables=nobs,
            detector_coords=[()] * ndet,
            detector_basis=["Z"] * ndet,
        )
    )


def test_empty_syndrome():
    g = _graph([(0.1, (0, 1), ())], 2)
    assert MWPMDecoder(g).decode(np.zeros(2, dtype=bool)) == 0


def test_pairs_matched_along_shortest_path():
    # chain of 4 detectors; defects at the ends must match through the middle
    g = _graph(
        [
            (0.1, (0, 1), (0,)),
            (0.1, (1, 2), ()),
            (0.1, (2, 3), (0,)),
            (0.001, (0,), ()),
            (0.001, (3,), ()),
        ],
        4,
    )
    dec = MWPMDecoder(g)
    syndrome = np.array([True, False, False, True])
    # path 0-1-2-3 flips the observable twice -> prediction 0
    assert dec.decode(syndrome) == 0


def test_boundary_matching_when_cheaper():
    g = _graph(
        [
            (0.001, (0, 1), ()),  # expensive internal edge
            (0.4, (0,), (0,)),  # cheap boundary edges
            (0.4, (1,), ()),
        ],
        2,
    )
    dec = MWPMDecoder(g)
    # both defects go to the boundary; only one crosses the observable
    assert dec.decode(np.array([True, True])) == 1


def test_odd_defect_count_uses_boundary():
    g = _graph([(0.1, (0, 1), (0,)), (0.2, (0,), ()), (0.2, (1,), (0,))], 2)
    dec = MWPMDecoder(g)
    assert dec.decode(np.array([True, False])) in (0, 1)  # defined behaviour
    # single defect at 1: boundary edge flips obs
    assert dec.decode(np.array([False, True])) == 1


def test_path_observable_parity_accumulates():
    g = _graph(
        [
            (0.1, (0, 1), (0,)),
            (0.1, (1, 2), (0,)),
        ],
        3,
    )
    dec = MWPMDecoder(g)
    # defects at 0 and 2: path crosses two obs-flipping edges -> cancel
    assert dec.decode(np.array([True, False, True])) == 0


def test_decode_batch_shape():
    g = _graph([(0.1, (0, 1), (0,)), (0.1, (0,), ()), (0.1, (1,), ())], 2)
    dec = MWPMDecoder(g)
    rng = np.random.default_rng(1)
    dets = rng.random((20, 2)) < 0.5
    out = dec.decode_batch(dets)
    assert out.shape == (20, 1)
