"""Pauli-frame sampler tests: channel statistics and tableau agreement."""

import numpy as np
import pytest

from repro.stab import Circuit, FrameSimulator, simulate_circuit


def _one_qubit_probe(noise_name, args, measure="M"):
    """Circuit: reset, apply channel, measure; detector = flip indicator."""
    c = Circuit()
    c.append("RX" if measure == "MX" else "R", [0])
    c.append(noise_name, [0], args)
    m = c.append(measure, [0])
    c.detector(m)
    return c


@pytest.mark.parametrize(
    "channel,args,expected",
    [
        ("X_ERROR", [0.2], 0.2),
        ("Y_ERROR", [0.2], 0.2),
        ("Z_ERROR", [0.2], 0.0),  # Z does not flip Z-measurements
        ("DEPOLARIZE1", [0.3], 0.2),  # X or Y flips: 2/3 of 0.3
        ("PAULI_CHANNEL_1", [0.1, 0.05, 0.2], 0.15),  # px + py
    ],
)
def test_one_qubit_channel_flip_rates(channel, args, expected):
    c = _one_qubit_probe(channel, args)
    det, _ = FrameSimulator(c).sample(40000, rng=7)
    assert det.mean() == pytest.approx(expected, abs=0.01)


def test_z_error_flips_x_measurement():
    c = _one_qubit_probe("Z_ERROR", [0.25], measure="MX")
    det, _ = FrameSimulator(c).sample(40000, rng=7)
    assert det.mean() == pytest.approx(0.25, abs=0.01)


def test_depolarize2_marginal_rate():
    c = Circuit()
    c.append("R", [0, 1])
    c.append("DEPOLARIZE2", [0, 1], [0.15])
    m = c.append("M", [0, 1])
    c.detector([m[0]])
    c.detector([m[1]])
    det, _ = FrameSimulator(c).sample(60000, rng=7)
    # each qubit sees an X or Y component in 8 of 15 cases
    assert det[:, 0].mean() == pytest.approx(0.15 * 8 / 15, abs=0.01)
    assert det[:, 1].mean() == pytest.approx(0.15 * 8 / 15, abs=0.01)


def test_reset_clears_frame():
    c = Circuit()
    c.append("R", [0])
    c.append("X_ERROR", [0], [1.0])
    c.append("R", [0])
    m = c.append("M", [0])
    c.detector(m)
    det, _ = FrameSimulator(c).sample(100, rng=0)
    assert det.sum() == 0


def test_mr_records_before_reset():
    c = Circuit()
    c.append("R", [0])
    c.append("X_ERROR", [0], [1.0])
    m1 = c.append("MR", [0])
    m2 = c.append("M", [0])
    c.detector(m1)
    c.detector(m2)
    det, _ = FrameSimulator(c).sample(100, rng=0)
    assert det[:, 0].all()
    assert not det[:, 1].any()


def test_cx_propagates_x_frames():
    c = Circuit()
    c.append("R", [0, 1])
    c.append("X_ERROR", [0], [1.0])
    c.append("CX", [0, 1])
    m = c.append("M", [0, 1])
    c.detector([m[0]])
    c.detector([m[1]])
    det, _ = FrameSimulator(c).sample(10, rng=0)
    assert det.all()


def test_cx_propagates_z_frames_backwards():
    c = Circuit()
    c.append("RX", [0, 1])
    c.append("Z_ERROR", [1], [1.0])
    c.append("CX", [0, 1])
    m = c.append("MX", [0, 1])
    c.detector([m[0]])
    c.detector([m[1]])
    det, _ = FrameSimulator(c).sample(10, rng=0)
    assert det[:, 0].all()  # Z copied onto the control
    assert det[:, 1].all()


def test_hadamard_exchanges_frames():
    c = Circuit()
    c.append("R", [0])
    c.append("Z_ERROR", [0], [1.0])
    c.append("H", [0])
    m = c.append("M", [0])
    c.detector(m)
    det, _ = FrameSimulator(c).sample(10, rng=0)
    assert det.all()


def test_observables_accumulate():
    c = Circuit()
    c.append("R", [0, 1])
    c.append("X_ERROR", [0, 1], [1.0])
    m = c.append("M", [0, 1])
    c.observable_include(0, [m[0]])
    c.observable_include(0, [m[1]])  # accumulates; two flips cancel
    _, obs = FrameSimulator(c).sample(10, rng=0)
    assert not obs.any()


def test_batching_is_seed_stable():
    c = _one_qubit_probe("X_ERROR", [0.5])
    det_a, _ = FrameSimulator(c).sample(5000, rng=42, batch_size=512)
    det_b, _ = FrameSimulator(c).sample(5000, rng=42, batch_size=512)
    assert np.array_equal(det_a, det_b)


def test_frame_matches_tableau_statistics():
    """Cross-validate the two simulators on a noisy GHZ circuit."""
    c = Circuit()
    c.append("R", [0, 1, 2])
    c.append("H", [0])
    c.append("DEPOLARIZE1", [0], [0.2])
    c.append("CX", [0, 1, 1, 2])
    c.append("DEPOLARIZE2", [0, 1], [0.1])
    m = c.append("M", [0, 1, 2])
    c.detector([m[0], m[1]])
    c.detector([m[1], m[2]])
    det, _ = FrameSimulator(c).sample(40000, rng=11)
    frame_rates = det.mean(axis=0)
    counts = np.zeros(2)
    trials = 1500
    for seed in range(trials):
        _, d, _ = simulate_circuit(c, seed)
        counts += d
    tableau_rates = counts / trials
    assert np.allclose(frame_rates, tableau_rates, atol=0.03)
