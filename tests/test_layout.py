"""Rotated-surface-code geometry tests."""

import pytest

from repro.codes import PatchLayout, QubitRegistry, other_basis
from repro.stab.pauli import PauliString


@pytest.mark.parametrize("d", [2, 3, 5, 7])
@pytest.mark.parametrize("v", ["X", "Z"])
def test_stabilizer_counts(d, v):
    lay = PatchLayout(0, d - 1, d, vertical_basis=v)
    counts = lay.stabilizer_counts()
    assert counts["X"] + counts["Z"] == d * d - 1


@pytest.mark.parametrize("d", [3, 5])
def test_balanced_types_for_odd_distance(d):
    lay = PatchLayout(0, d - 1, d, vertical_basis="X")
    counts = lay.stabilizer_counts()
    assert counts["X"] == counts["Z"]


def test_boundary_types():
    d = 5
    lay = PatchLayout(0, d - 1, d, vertical_basis="X")
    for p in lay.plaquettes:
        a, b = p.pos
        if b in (0, d) and p.weight == 2:
            assert p.basis == "X"
        if a in (0, d) and p.weight == 2:
            assert p.basis == "Z"


def test_plaquette_weights():
    d = 5
    lay = PatchLayout(0, d - 1, d, vertical_basis="Z")
    for p in lay.plaquettes:
        assert p.weight in (2, 4)
        assert len(p.slots) == 4


def test_schedule_layers_are_conflict_free():
    """No data qubit appears twice in the same CNOT time slot."""
    d = 7
    lay = PatchLayout(0, d - 1, d, vertical_basis="X")
    for slot in range(4):
        seen = set()
        for p in lay.plaquettes:
            coord = p.slots[slot]
            if coord is None:
                continue
            assert coord not in seen, f"slot {slot} reuses data {coord}"
            seen.add(coord)


def _to_pauli(layout, coords, basis, registry):
    n = len(registry)
    p = PauliString.identity(n)
    for c in coords:
        q = registry.data(c)
        if basis == "X":
            p.xs[q] = True
        else:
            p.zs[q] = True
    return p


@pytest.mark.parametrize("v", ["X", "Z"])
def test_stabilizers_commute_and_logicals_anticommute(v):
    d = 3
    lay = PatchLayout(0, d - 1, d, vertical_basis=v)
    registry = QubitRegistry()
    for c in lay.data_coords():
        registry.data(c)
    stabs = [_to_pauli(lay, p.data, p.basis, registry) for p in lay.plaquettes]
    for i, a in enumerate(stabs):
        for b in stabs[i + 1 :]:
            assert a.commutes_with(b)
    vert = _to_pauli(lay, lay.vertical_logical(), v, registry)
    horiz = _to_pauli(lay, lay.horizontal_logical(), other_basis(v), registry)
    for s in stabs:
        assert vert.commutes_with(s)
        assert horiz.commutes_with(s)
    assert not vert.commutes_with(horiz)


def test_merged_layout_is_superset_of_patches():
    d = 3
    v = "X"
    p_lay = PatchLayout(0, d - 1, d, vertical_basis=v)
    pp_lay = PatchLayout(d + 1, 2 * d, d, vertical_basis=v)
    merged = PatchLayout(0, 2 * d, d, vertical_basis=v)
    merged_by_pos = {p.pos: p for p in merged.plaquettes}
    for patch in (p_lay, pp_lay):
        for p in patch.plaquettes:
            assert p.pos in merged_by_pos
            assert merged_by_pos[p.pos].basis == p.basis
            # merged supports contain the standalone supports
            assert set(p.data) <= set(merged_by_pos[p.pos].data)


def test_registry_is_stable_and_distinct():
    reg = QubitRegistry()
    a = reg.data((0, 0))
    b = reg.ancilla((0, 0))  # same position, different role
    assert a != b
    assert reg.data((0, 0)) == a
    assert len(reg) == 2


def test_invalid_layouts_rejected():
    with pytest.raises(ValueError):
        PatchLayout(0, 2, 3, vertical_basis="Q")
    with pytest.raises(ValueError):
        PatchLayout(3, 2, 3, vertical_basis="X")
    lay = PatchLayout(0, 2, 3, vertical_basis="X")
    with pytest.raises(ValueError):
        lay.vertical_logical(7)
    with pytest.raises(ValueError):
        lay.horizontal_logical(5)
