"""k-patch synchronization planner tests (Sec. 4.3)."""

import pytest

from repro.core import PatchState, plan_k_patch_sync


def _patches(specs):
    return [PatchState(patch_id=i, cycle_ns=c, elapsed_ns=e) for i, (c, e) in enumerate(specs)]


def test_patch_state_validation():
    with pytest.raises(ValueError):
        PatchState(patch_id=0, cycle_ns=1000, elapsed_ns=1000)
    p = PatchState(patch_id=0, cycle_ns=1000, elapsed_ns=0)
    assert p.remaining_ns == 0


def test_needs_at_least_two_patches():
    with pytest.raises(ValueError):
        plan_k_patch_sync(_patches([(1000, 0)]))


def test_unknown_policy_rejected():
    with pytest.raises(ValueError):
        plan_k_patch_sync(_patches([(1000, 0), (1000, 100)]), policy="bogus")


def test_slowest_patch_identified():
    plan = plan_k_patch_sync(_patches([(1000, 900), (1000, 100), (1000, 500)]))
    # patch 1 has 900 ns remaining -> slowest
    assert plan.slowest_patch == 1
    assert len(plan.directives) == 2


def test_active_slack_values():
    plan = plan_k_patch_sync(_patches([(1000, 900), (1000, 100)]), policy="active")
    d = plan.directives[0]
    assert d.patch_id == 0
    assert d.slack_ns == 800
    assert d.idle_ns == 800
    assert plan.max_slack_ns == 800


def test_synchronized_patch_gets_none_directive():
    plan = plan_k_patch_sync(_patches([(1000, 500), (1000, 500)]))
    assert plan.directives[0].policy == "none"
    assert plan.total_idle_ns == 0


def test_hybrid_uses_extra_rounds_for_unequal_cycles():
    # P cycle 1000 elapsed 800 (200 left), slowest cycle 1325 elapsed 200
    # (1125 left): slack 925; (925 - z*1000) mod 1325 < eps for some z <= 5
    plan = plan_k_patch_sync(
        _patches([(1000, 800), (1325, 200)]), policy="hybrid", eps_ns=400
    )
    d = plan.directives[0]
    assert d.policy in ("hybrid", "active")
    if d.policy == "hybrid":
        assert d.idle_ns < 400
        assert d.extra_rounds >= 1
        # verify the alignment arithmetic directly
        assert (d.slack_ns - d.extra_rounds * 1000 - d.idle_ns) % 1325 == 0


def test_hybrid_falls_back_for_equal_cycles():
    plan = plan_k_patch_sync(
        _patches([(1000, 800), (1000, 200)]), policy="hybrid", eps_ns=50
    )
    assert plan.directives[0].policy == "active"


def test_many_patches_all_get_directives():
    specs = [(1000 + 25 * (i % 4), (37 * i) % 900) for i in range(50)]
    plan = plan_k_patch_sync(_patches(specs), policy="hybrid")
    assert len(plan.directives) == 49
    for d in plan.directives:
        assert d.slack_ns >= 0
