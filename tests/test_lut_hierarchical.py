"""Lookup-table and hierarchical decoder tests."""

import numpy as np
import pytest

from repro.decoders import (
    HierarchicalDecoder,
    LookupTableDecoder,
    MWPMDecoder,
    build_matching_graph,
    lut_entry_bytes,
    max_entries_for_budget,
    measure_decoder_latencies,
)
from repro.stab.dem import DemError, DetectorErrorModel


def _chain_graph(n=3):
    errors = [DemError(0.05, (0,), (0,))]
    for i in range(n - 1):
        errors.append(DemError(0.05, (i, i + 1), ()))
    errors.append(DemError(0.05, (n - 1,), ()))
    return build_matching_graph(
        DetectorErrorModel(
            errors=errors,
            num_detectors=n,
            num_observables=1,
            detector_coords=[()] * n,
            detector_basis=["Z"] * n,
        )
    )


def test_entry_size_model():
    assert lut_entry_bytes(8, 1) == 2
    assert lut_entry_bytes(1, 1) == 1
    assert max_entries_for_budget(1024, 8, 1) == 512


def test_lut_contains_trivial_syndrome():
    lut = LookupTableDecoder(_chain_graph(), max_errors=1)
    hit, mask = lut.lookup(np.zeros(3, dtype=bool))
    assert hit and mask == 0


def test_lut_single_errors_exact():
    g = _chain_graph()
    lut = LookupTableDecoder(g, max_errors=1)
    for e in range(g.num_edges):
        syndrome = np.zeros(3, dtype=bool)
        for node in (int(g.edge_u[e]), int(g.edge_v[e])):
            if node < 3:
                syndrome[node] ^= True
        hit, mask = lut.lookup(syndrome)
        assert hit
        assert mask == int(g.edge_obs[e])


def test_lut_miss_behaviour():
    lut = LookupTableDecoder(_chain_graph(), max_errors=1)
    # weight-2 non-adjacent syndrome is not in a max_errors=1 table
    syndrome = np.array([True, False, True])
    hit, _ = lut.lookup(syndrome)
    assert not hit
    with pytest.raises(KeyError):
        lut.decode(syndrome)


def test_lut_prefers_lower_weight_correction():
    g = _chain_graph()
    full = LookupTableDecoder(g, max_errors=3)
    # syndrome of a single boundary error must decode to that single error
    syndrome = np.array([True, False, False])
    hit, mask = full.lookup(syndrome)
    assert hit and mask == 1


def test_entry_budget_truncates_table():
    g = _chain_graph()
    small = LookupTableDecoder(g, max_errors=3, max_entries=4)
    assert small.num_entries <= 4
    assert small.size_bytes() <= 4 * lut_entry_bytes(3, 1)


def test_hierarchical_hit_and_miss_latencies():
    g = _chain_graph()
    h = HierarchicalDecoder(
        g,
        lut_size_bytes=1024,
        lut_max_errors=1,
        hit_latency_ns=20.0,
        miss_latencies_ns=np.array([1000.0]),
    )
    dets = np.array(
        [
            [False, False, False],  # hit
            [True, False, True],  # miss (needs 2 errors)
        ]
    )
    out, stats = h.decode_batch_stats(dets, rng=0)
    assert stats.shots == 2
    assert stats.hits == 1
    assert stats.hit_rate == 0.5
    assert stats.total_latency_ns == pytest.approx(1020.0)
    assert out.shape == (2, 1)


def test_hierarchical_predictions_match_slow_decoder_on_miss():
    g = _chain_graph()
    slow = MWPMDecoder(g)
    h = HierarchicalDecoder(
        g, lut_size_bytes=8, lut_max_errors=1, miss_latencies_ns=np.array([500.0]),
        slow_decoder=slow,
    )
    syndrome = np.array([[True, False, True]])
    out, stats = h.decode_batch_stats(syndrome, rng=0)
    assert stats.hits == 0
    assert bool(out[0, 0]) == bool(slow.decode(syndrome[0]) & 1)


def test_measure_decoder_latencies_positive():
    g = _chain_graph()
    dec = MWPMDecoder(g)
    rng = np.random.default_rng(2)
    dets = rng.random((50, 3)) < 0.3
    lat = measure_decoder_latencies(dec, dets, max_samples=20)
    assert lat.shape == (20,)
    assert (lat > 0).all()
