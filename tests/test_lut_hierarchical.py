"""Lookup-table and hierarchical decoder tests.

Chain graphs come from the shared fixture factory in ``conftest.py``.
"""

import numpy as np
import pytest

from repro.decoders import (
    HierarchicalDecoder,
    LookupTableDecoder,
    MWPMDecoder,
    lut_entry_bytes,
    max_entries_for_budget,
    measure_decoder_latencies,
)


def test_entry_size_model():
    assert lut_entry_bytes(8, 1) == 2
    assert lut_entry_bytes(1, 1) == 1
    assert max_entries_for_budget(1024, 8, 1) == 512


def test_lut_contains_trivial_syndrome(chain_graph):
    lut = LookupTableDecoder(chain_graph(3), max_errors=1)
    hit, mask = lut.lookup(np.zeros(3, dtype=bool))
    assert hit and mask == 0


def test_lut_single_errors_exact(chain_graph):
    g = chain_graph(3)
    lut = LookupTableDecoder(g, max_errors=1)
    for e in range(g.num_edges):
        syndrome = np.zeros(3, dtype=bool)
        for node in (int(g.edge_u[e]), int(g.edge_v[e])):
            if node < 3:
                syndrome[node] ^= True
        hit, mask = lut.lookup(syndrome)
        assert hit
        assert mask == int(g.edge_obs[e])


def test_lut_miss_behaviour(chain_graph):
    lut = LookupTableDecoder(chain_graph(3), max_errors=1)
    # weight-2 non-adjacent syndrome is not in a max_errors=1 table
    syndrome = np.array([True, False, True])
    hit, _ = lut.lookup(syndrome)
    assert not hit
    with pytest.raises(KeyError):
        lut.decode(syndrome)


def test_lut_lookup_batch_matches_scalar(chain_graph):
    g = chain_graph(3)
    lut = LookupTableDecoder(g, max_errors=1)
    rows = np.array(
        [[bool(v >> i & 1) for i in range(3)] for v in range(8)], dtype=bool
    )
    hits, masks = lut.lookup_batch(rows)
    for i in range(rows.shape[0]):
        hit, mask = lut.lookup(rows[i])
        assert hits[i] == hit
        assert int(masks[i]) == mask
    with pytest.raises(ValueError):
        lut.lookup_batch(rows[:, :2])


def test_lut_prefers_lower_weight_correction(chain_graph):
    full = LookupTableDecoder(chain_graph(3), max_errors=3)
    # syndrome of a single boundary error must decode to that single error
    syndrome = np.array([True, False, False])
    hit, mask = full.lookup(syndrome)
    assert hit and mask == 1


def test_entry_budget_truncates_table(chain_graph):
    small = LookupTableDecoder(chain_graph(3), max_errors=3, max_entries=4)
    assert small.num_entries <= 4
    assert small.size_bytes() <= 4 * lut_entry_bytes(3, 1)


def test_hierarchical_hit_and_miss_latencies(chain_graph):
    h = HierarchicalDecoder(
        chain_graph(3),
        lut_size_bytes=1024,
        lut_max_errors=1,
        hit_latency_ns=20.0,
        miss_latencies_ns=np.array([1000.0]),
    )
    dets = np.array(
        [
            [False, False, False],  # hit
            [True, False, True],  # miss (needs 2 errors)
        ]
    )
    out, stats = h.decode_batch_stats(dets, rng=0)
    assert stats.shots == 2
    assert stats.hits == 1
    assert stats.hit_rate == 0.5
    assert stats.total_latency_ns == pytest.approx(1020.0)
    assert out.shape == (2, 1)


def test_hierarchical_predictions_match_slow_decoder_on_miss(chain_graph):
    g = chain_graph(3)
    slow = MWPMDecoder(g)
    h = HierarchicalDecoder(
        g, lut_size_bytes=8, lut_max_errors=1, miss_latencies_ns=np.array([500.0]),
        slow_decoder=slow,
    )
    syndrome = np.array([[True, False, True]])
    out, stats = h.decode_batch_stats(syndrome, rng=0)
    assert stats.hits == 0
    assert bool(out[0, 0]) == bool(slow.decode(syndrome[0]) & 1)


def test_measure_decoder_latencies_positive(chain_graph):
    dec = MWPMDecoder(chain_graph(3))
    rng = np.random.default_rng(2)
    dets = rng.random((50, 3)) < 0.3
    lat = measure_decoder_latencies(dec, dets, max_samples=20)
    assert lat.shape == (20,)
    assert (lat > 0).all()
