"""Patch-mapper / router tests."""

import pytest

from repro.workloads import LogicalCircuit, ghz, qft
from repro.workloads.mapper import map_circuit


def _circ(n=4):
    return LogicalCircuit(n)


def test_cx_becomes_one_op():
    c = _circ()
    c.cx(0, 3)
    prog = map_circuit(c)
    assert len(prog.ops) == 1
    op = prog.ops[0]
    assert op.kind == "cx"
    assert op.route == (0, 3)
    assert op.num_patches == 3  # two data patches + routing ancilla


def test_single_qubit_cliffords_are_free():
    c = _circ()
    c.h(0)
    c.s(1)
    c.rz(2, 3.14159265358979)  # Clifford angle
    prog = map_circuit(c)
    assert prog.ops == []
    assert prog.num_timesteps == 0


def test_disjoint_routes_share_a_timestep():
    c = _circ(6)
    c.cx(0, 1)
    c.cx(4, 5)
    prog = map_circuit(c)
    assert prog.num_timesteps == 1
    assert prog.max_concurrent_ops() == 2


def test_overlapping_routes_serialize():
    c = _circ(6)
    c.cx(0, 3)
    c.cx(2, 5)  # bus interval overlaps [0,3]
    prog = map_circuit(c)
    assert prog.num_timesteps == 2
    timesteps = sorted(op.timestep for op in prog.ops)
    assert timesteps == [0, 1]


def test_qubit_dependencies_respected():
    c = _circ(4)
    c.cx(0, 1)
    c.cx(1, 2)  # depends on qubit 1
    prog = map_circuit(c)
    by_time = {tuple(op.qubits): op.timestep for op in prog.ops}
    assert by_time[(1, 2)] > by_time[(0, 1)]


def test_t_gates_route_to_magic_port():
    c = _circ(4)
    c.t(2)
    prog = map_circuit(c)
    op = prog.ops[0]
    assert op.kind == "t"
    assert op.route == (-1, 2)


def test_two_t_gates_on_distinct_qubits_conflict_at_port():
    """The single magic-state port serializes simultaneous consumptions."""
    c = _circ(4)
    c.t(1)
    c.t(3)
    prog = map_circuit(c)
    assert prog.num_timesteps == 2


def test_ccx_takes_three_timesteps():
    c = _circ(4)
    c.ccx(0, 1, 2)
    prog = map_circuit(c)
    assert prog.num_timesteps == 3
    assert prog.ops[0].kind == "ccx"


def test_measure_is_single_tile():
    c = _circ(3)
    c.measure(1)
    prog = map_circuit(c)
    assert prog.ops[0].route == (1, 1)


def test_sync_profile_counts_events():
    c = qft(5)
    prog = map_circuit(c)
    profile = prog.sync_profile(code_distance=15)
    assert profile["sync_events"] == len(prog.ops) > 0
    assert profile["total_cycles"] == profile["timesteps"] * 15
    assert profile["syncs_per_cycle"] > 0


def test_ghz_maps_to_chain_of_cx():
    prog = map_circuit(ghz(5))
    cx_ops = [op for op in prog.ops if op.kind == "cx"]
    assert len(cx_ops) == 4
    # the chain is sequential (each cx depends on the previous target)
    assert prog.num_timesteps >= 4 + 1  # + final measurement layer


def test_bus_utilization_bounded():
    prog = map_circuit(qft(6))
    u = prog.bus_utilization()
    assert 0 < u <= 1.5  # intervals may span the port (-1), slight overcount
