"""Union-find decoder tests: exactness on small cases, MWPM agreement."""

import numpy as np
import pytest

from repro.codes import memory_experiment
from repro.decoders import MWPMDecoder, UnionFindDecoder, build_matching_graph
from repro.stab import DemSampler, circuit_to_dem
from repro.stab.dem import DemError, DetectorErrorModel


def _chain_graph(n=4, obs_on_all=True):
    errors = [DemError(0.1, (0,), (0,) if obs_on_all else ())]
    for i in range(n - 1):
        errors.append(DemError(0.1, (i, i + 1), (0,) if obs_on_all else ()))
    errors.append(DemError(0.1, (n - 1,), (0,) if obs_on_all else ()))
    return build_matching_graph(
        DetectorErrorModel(
            errors=errors,
            num_detectors=n,
            num_observables=1,
            detector_coords=[()] * n,
            detector_basis=["Z"] * n,
        )
    )


def test_empty_syndrome_decodes_to_identity():
    g = _chain_graph()
    assert UnionFindDecoder(g).decode(np.zeros(4, dtype=bool)) == 0


def test_single_defect_matches_to_nearest_boundary():
    g = _chain_graph()
    dec = UnionFindDecoder(g)
    syndrome = np.zeros(4, dtype=bool)
    syndrome[0] = True  # adjacent to left boundary: one boundary edge
    assert dec.decode(syndrome) == 1


def test_defect_pair_matches_internally():
    g = _chain_graph()
    dec = UnionFindDecoder(g)
    syndrome = np.zeros(4, dtype=bool)
    syndrome[1] = syndrome[2] = True  # one internal edge, obs flips once
    assert dec.decode(syndrome) == 1


def test_decode_batch_matches_single_shot():
    g = _chain_graph()
    dec = UnionFindDecoder(g)
    rng = np.random.default_rng(0)
    dets = rng.random((50, 4)) < 0.3
    batch = dec.decode_batch(dets)
    for i in range(50):
        assert batch[i, 0] == bool(dec.decode(dets[i]) & 1)


def _surface_pipeline(d, noise, rounds=None):
    art = memory_experiment(d, rounds or d, noise)
    dem = circuit_to_dem(art.circuit)
    graph = build_matching_graph(dem, basis="Z")
    return dem, graph


def test_every_single_error_corrected_d3(quiet_noise):
    """Distance 3 must correct every weight-1 error mechanism exactly."""
    dem, graph = _surface_pipeline(3, quiet_noise)
    decoder = UnionFindDecoder(graph)
    dem_z = dem.filtered("Z")
    for err in dem_z.errors:
        syndrome = np.zeros(graph.num_detectors, dtype=bool)
        for det in err.detectors:
            syndrome[det] = True
        predicted = decoder.decode(syndrome)
        actual = sum(1 << o for o in err.observables)
        assert predicted == actual, f"failed on {err}"


def test_unionfind_close_to_mwpm(quiet_noise):
    dem, graph = _surface_pipeline(3, quiet_noise)
    det, obs = DemSampler(dem).sample(20000, rng=9)
    uf = UnionFindDecoder(graph).decode_batch(det)
    mw = MWPMDecoder(graph).decode_batch(det)
    ler_uf = (uf[:, :1] ^ obs).mean()
    ler_mw = (mw[:, :1] ^ obs).mean()
    # union-find must stay within 2x of exact matching at this scale
    assert ler_uf <= max(2.0 * ler_mw, 1e-3)
    # and the two must agree on the overwhelming majority of shots
    assert (uf[:, 0] == mw[:, 0]).mean() > 0.99


def test_isolated_odd_cluster_degrades_gracefully():
    """A defect with no edges at all must not hang the decoder."""
    g = build_matching_graph(
        DetectorErrorModel(
            errors=[DemError(0.1, (0, 1), ())],
            num_detectors=3,  # detector 2 has no incident edges
            num_observables=1,
            detector_coords=[()] * 3,
            detector_basis=["Z"] * 3,
        )
    )
    dec = UnionFindDecoder(g)
    syndrome = np.array([False, False, True])
    assert dec.decode(syndrome) == 0  # gives up cleanly


def test_weighted_growth_prefers_cheap_edges():
    """Two paths between defects: matching follows the high-probability one."""
    errors = [
        DemError(0.4, (0, 1), ()),  # cheap direct edge, no obs flip
        DemError(0.001, (0,), (0,)),  # expensive boundary edges flipping obs
        DemError(0.001, (1,), (0,)),
    ]
    g = build_matching_graph(
        DetectorErrorModel(
            errors=errors,
            num_detectors=2,
            num_observables=1,
            detector_coords=[(), ()],
            detector_basis=["Z", "Z"],
        )
    )
    dec = UnionFindDecoder(g)
    assert dec.decode(np.array([True, True])) == 0
