"""Synchronization microarchitecture tests (Fig. 12): tables, engine, controller."""

import pytest

from repro.core import (
    PatchCounterTable,
    PatchMetadataTable,
    QECController,
    SynchronizationEngine,
)


def _tables(cycles):
    meta = PatchMetadataTable()
    counters = PatchCounterTable(meta)
    for pid, cyc in cycles.items():
        meta.add(pid, cyc)
        counters.activate(pid)
    return meta, counters


def test_metadata_table_basics():
    meta = PatchMetadataTable()
    meta.add(0, 1900)
    assert 0 in meta and meta.cycle_duration(0) == 1900
    with pytest.raises(KeyError):
        meta.add(0, 1000)
    meta.remove(0)
    assert 0 not in meta


def test_counter_wraps_at_cycle():
    meta, counters = _tables({0: 1000})
    counters.tick(999)
    assert counters.elapsed_in_cycle(0) == 999
    counters.tick(1)
    assert counters.elapsed_in_cycle(0) == 0
    assert counters.completed_cycles(0) == 1
    counters.tick(2500)
    assert counters.elapsed_in_cycle(0) == 500
    assert counters.completed_cycles(0) == 3


def test_counter_valid_bit():
    meta, counters = _tables({0: 1000})
    counters.deactivate(0)
    assert not counters.is_valid(0)
    with pytest.raises(ValueError):
        counters.elapsed_in_cycle(0)


def test_counter_initial_phase():
    meta, counters = _tables({0: 1000})
    counters.activate(0, phase_ns=400)
    assert counters.elapsed_in_cycle(0) == 400
    with pytest.raises(ValueError):
        counters.activate(0, phase_ns=1000)


def test_counter_bits_sizing():
    """10-12 bit counters suffice for 1000-2000 ns cycles at 1 GHz (Sec. 5)."""
    assert PatchCounterTable.counter_bits(1000) == 10
    assert PatchCounterTable.counter_bits(1900) == 11
    assert PatchCounterTable.counter_bits(2000) == 11
    assert 10 <= PatchCounterTable.counter_bits(1500) <= 12


def test_engine_phase_calculator():
    meta, counters = _tables({0: 1000, 1: 1000})
    engine = SynchronizationEngine(meta, counters, policy="active")
    counters.tick(300)
    assert engine.time_to_cycle_end(0) == 700


def test_engine_identifies_slowest_and_slack():
    meta, counters = _tables({0: 1000, 1: 1000})
    counters._rows[1].counter = 400  # patch 1 is 400 ns into its cycle
    counters._rows[0].counter = 900  # patch 0 nearly done -> it leads
    engine = SynchronizationEngine(meta, counters, policy="active", spread_rounds=4)
    decision = engine.synchronize([0, 1])
    assert decision.slowest_patch == 1
    assert decision.max_slack_ns == 500
    d0 = decision.directives[0]
    assert d0.policy == "active"
    assert d0.total_idle_ns == pytest.approx(500.0)
    assert decision.directives[1].policy == "none"


def test_engine_passive_policy():
    meta, counters = _tables({0: 1000, 1: 1000})
    counters._rows[0].counter = 900
    counters._rows[1].counter = 400
    engine = SynchronizationEngine(meta, counters, policy="passive")
    d = engine.synchronize([0, 1]).directives[0]
    assert d.policy == "passive"
    assert d.spread_rounds == 1
    assert d.total_idle_ns == pytest.approx(500.0)


def test_engine_auto_selects_hybrid_for_unequal_cycles():
    meta, counters = _tables({0: 1000, 1: 1325})
    counters._rows[0].counter = 500
    counters._rows[1].counter = 325
    engine = SynchronizationEngine(meta, counters, policy="auto", hybrid_max_rounds=5)
    decision = engine.synchronize([0, 1])
    d = decision.directives[0]
    assert d.policy in ("hybrid", "active")
    if d.policy == "hybrid":
        assert d.extra_rounds >= 1
        assert d.total_idle_ns < 400.0


def test_engine_auto_falls_back_to_active_for_equal_cycles():
    meta, counters = _tables({0: 1000, 1: 1000})
    counters._rows[0].counter = 700  # patch 0 has 300 ns left -> it lags
    engine = SynchronizationEngine(meta, counters, policy="auto")
    decision = engine.synchronize([0, 1])
    assert decision.slowest_patch == 0
    assert decision.directives[1].policy == "active"
    assert decision.directives[1].total_idle_ns == pytest.approx(300.0)


def test_engine_requires_valid_counters():
    meta, counters = _tables({0: 1000, 1: 1000})
    counters.deactivate(1)
    engine = SynchronizationEngine(meta, counters)
    with pytest.raises(ValueError):
        engine.synchronize([0, 1])
    with pytest.raises(ValueError):
        engine.synchronize([0])


def test_k_patch_synchronization():
    cycles = {i: 1000 for i in range(5)}
    meta, counters = _tables(cycles)
    for i in range(5):
        counters._rows[i].counter = 150 * i
    engine = SynchronizationEngine(meta, counters, policy="active")
    decision = engine.synchronize(list(range(5)))
    # patch with the largest remaining time = smallest counter > 0
    assert decision.slowest_patch == 1
    idles = {pid: d.total_idle_ns for pid, d in decision.directives.items()}
    assert idles[1] == 0.0
    assert max(idles.values()) == decision.max_slack_ns


# --- controller ----------------------------------------------------------------


def test_controller_aligns_equal_cycle_patches():
    ctrl = QECController(policy="active")
    ctrl.add_patch(0, 1000)
    ctrl.add_patch(1, 1000, phase_ns=0)
    ctrl.advance(900)
    # desynchronize patch 1 by retiring/re-adding with a phase
    ctrl.retire_patch(1)
    ctrl.metadata.remove(1)
    ctrl.metadata.add(1, 1000)
    ctrl.counters.activate(1, phase_ns=400)
    ctrl.processes[1] = type(ctrl.processes[0])(patch_id=1, cycle_ns=1000,
                                                cycle_start_ns=ctrl.now_ns - 400)
    record = ctrl.merge([0, 1])
    assert record.aligned_start_ns >= ctrl.now_ns
    assert record.decision.max_slack_ns > 0


def test_controller_merge_invariant_hybrid():
    ctrl = QECController(policy="auto")
    ctrl.add_patch(0, 1000)
    ctrl.add_patch(1, 1325)
    ctrl.advance(700)
    record = ctrl.merge([0, 1])
    # alignment invariant is asserted inside merge(); check the log too
    assert ctrl.merge_log[-1] is record
    assert record.patch_ids == (0, 1)


def test_controller_round_tracking():
    ctrl = QECController()
    ctrl.add_patch(0, 1000)
    ctrl.advance(3500)
    assert ctrl.processes[0].rounds_completed == 3
    assert ctrl.counters.elapsed_in_cycle(0) == 500
