"""Shared fixtures for the test suite.

Besides the noise-model fixtures, this hosts the decoder-test *fixture
factory*: cached surface-code ``(graph, detector samples)`` builders over a
``(d, p)`` grid, DEM/chain matching-graph constructors, dense random
syndrome generators, and the ordered decode-backend list.  The kernel
parity matrix (``test_kernels.py``), the cross-decoder contract suite
(``test_decoder_contract.py``) and the per-decoder test modules all build
their cases through these factories instead of copy-pasted setup.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.noise import GOOGLE, IBM, NoiseModel

#: the parity matrix's shared (d, p) grid: point -> (shots, sample seed)
PARITY_GRID_POINTS = {
    (3, 2e-3): (800, 31),
    (3, 5e-3): (800, 32),
    (5, 1e-3): (800, 33),
}

_SURFACE_CACHE: dict = {}


def build_surface_case(
    d: int, p: float, shots: int, seed: int, *, idle_scale: float = 0.0
):
    """Cached ``(graph, det, obs)`` of a (d, p) surface-code memory run.

    One Z-basis matching graph plus ``shots`` sampled detector/observable
    rows; results are cached per ``(d, p, shots, seed, idle_scale)`` so the
    expensive circuit analysis runs once per test session.
    """
    from repro.codes import memory_experiment
    from repro.decoders import build_matching_graph
    from repro.stab import DemSampler, circuit_to_dem

    key = (d, p, shots, seed, idle_scale)
    if key not in _SURFACE_CACHE:
        noise = NoiseModel(hardware=GOOGLE, p=p, idle_scale=idle_scale)
        art = memory_experiment(d, d, noise)
        dem = circuit_to_dem(art.circuit)
        graph = build_matching_graph(dem, basis="Z")
        det, obs = DemSampler(dem).sample(shots, rng=seed)
        _SURFACE_CACHE[key] = (graph, det, obs)
    return _SURFACE_CACHE[key]


def build_dem_graph(errors, ndet: int, nobs: int = 1):
    """Matching graph from ``(probability, detectors, observables)`` triples."""
    from repro.decoders import build_matching_graph
    from repro.stab.dem import DemError, DetectorErrorModel

    return build_matching_graph(
        DetectorErrorModel(
            errors=[DemError(p, tuple(d), tuple(o)) for p, d, o in errors],
            num_detectors=ndet,
            num_observables=nobs,
            detector_coords=[()] * ndet,
            detector_basis=["Z"] * ndet,
        )
    )


def build_chain_graph(n: int = 4):
    """The canonical n-detector chain: boundary edges at both ends, the left
    one carrying observable 0."""
    errors = [(0.05, (0,), (0,))]
    for i in range(n - 1):
        errors.append((0.05, (i, i + 1), ()))
    errors.append((0.05, (n - 1,), ()))
    return build_dem_graph(errors, n, 1)


def build_dense_syndromes(graph, n: int, density: float, seed: int) -> np.ndarray:
    """Seeded ``(n, num_detectors)`` bool matrix of iid defects."""
    rng = np.random.default_rng(seed)
    return rng.random((n, graph.num_detectors)) < density


@pytest.fixture(scope="session")
def surface_case():
    """Factory fixture for :func:`build_surface_case`."""
    return build_surface_case


@pytest.fixture(scope="session")
def parity_grid():
    """The backend parity matrix's (d, p) grid: point -> (graph, det)."""
    return {
        (d, p): build_surface_case(d, p, shots, seed)[:2]
        for (d, p), (shots, seed) in PARITY_GRID_POINTS.items()
    }


@pytest.fixture(scope="session")
def dem_graph():
    """Factory fixture for :func:`build_dem_graph`."""
    return build_dem_graph


@pytest.fixture(scope="session")
def chain_graph():
    """Factory fixture for :func:`build_chain_graph`."""
    return build_chain_graph


@pytest.fixture
def dense_syndromes():
    """Factory fixture for :func:`build_dense_syndromes`."""
    return build_dense_syndromes


@pytest.fixture
def backend_names():
    """Registered decode-backend names, reference (``python``) first."""
    from repro.decoders import kernels

    return ["python"] + [n for n in kernels.names() if n != "python"]


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def ibm_noise():
    return NoiseModel(hardware=IBM, p=1e-3)


@pytest.fixture
def google_noise():
    return NoiseModel(hardware=GOOGLE, p=1e-3)


@pytest.fixture
def quiet_noise():
    """Gate noise only; idling disabled (fast, literature-comparable)."""
    return NoiseModel(hardware=GOOGLE, p=1e-3, idle_scale=0.0)
