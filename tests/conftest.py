"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.noise import GOOGLE, IBM, NoiseModel


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def ibm_noise():
    return NoiseModel(hardware=IBM, p=1e-3)


@pytest.fixture
def google_noise():
    return NoiseModel(hardware=GOOGLE, p=1e-3)


@pytest.fixture
def quiet_noise():
    """Gate noise only; idling disabled (fast, literature-comparable)."""
    return NoiseModel(hardware=GOOGLE, p=1e-3, idle_scale=0.0)
