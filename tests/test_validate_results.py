"""Exit-code tests for ``scripts/validate_results.py``.

The validator is the last gate before benchmark artifacts ship; these
tests pin its contract: clean directory -> 0, any corruption (NaN,
truncated JSON, empty payloads, missing required keys, missing dir) -> 1,
with every problem listed on stderr.
"""

import importlib.util
import json
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[1]

spec = importlib.util.spec_from_file_location(
    "validate_results", REPO / "scripts" / "validate_results.py"
)
validate_results = importlib.util.module_from_spec(spec)
spec.loader.exec_module(validate_results)


@pytest.fixture
def results_dir(tmp_path):
    d = tmp_path / "results"
    d.mkdir()
    (d / "custom_rows.json").write_text(
        json.dumps([{"d": 3, "p": 1e-3, "ler": 2.5e-4}, {"d": 5, "p": 1e-3, "ler": 1.1e-5}])
    )
    return d


def test_clean_directory_exits_zero(results_dir, capsys):
    assert validate_results.main([str(results_dir)]) == 0
    assert "0 invalid" in capsys.readouterr().out


def test_repo_results_directory_is_valid():
    shipped = REPO / "benchmarks" / "results"
    if not shipped.is_dir():
        pytest.skip("repo ships no benchmark results")
    assert validate_results.main([str(shipped)]) == 0


def test_nan_rate_exits_nonzero(results_dir, capsys):
    # json.dump happily writes NaN; the validator must reject it
    (results_dir / "bad_nan.json").write_text('{"config": {}, "ler": NaN}')
    assert validate_results.main([str(results_dir)]) == 1
    assert "bad_nan.json" in capsys.readouterr().err


def test_truncated_json_exits_nonzero(results_dir, capsys):
    (results_dir / "truncated.json").write_text('{"config": {"d": 3}, "rows": [')
    assert validate_results.main([str(results_dir)]) == 1
    assert "invalid JSON" in capsys.readouterr().err


def test_empty_payload_exits_nonzero(results_dir, capsys):
    (results_dir / "empty_list.json").write_text("[]")
    (results_dir / "empty_row.json").write_text("[{}]")
    assert validate_results.main([str(results_dir)]) == 1
    err = capsys.readouterr().err
    assert "empty_list.json" in err and "empty_row.json" in err


def test_missing_required_keys_exits_nonzero(results_dir, capsys):
    # a file the repo's harness owns must carry its schema keys
    (results_dir / "decode_backends.json").write_text('{"mwpm": {}}')
    assert validate_results.main([str(results_dir)]) == 1
    assert "unionfind" in capsys.readouterr().err


def test_missing_directory_exits_nonzero(tmp_path, capsys):
    assert validate_results.main([str(tmp_path / "nope")]) == 1
    assert "not found" in capsys.readouterr().err


def test_empty_directory_exits_nonzero(tmp_path, capsys):
    empty = tmp_path / "results"
    empty.mkdir()
    assert validate_results.main([str(empty)]) == 1
    assert "no result files" in capsys.readouterr().err


def test_all_problems_listed_not_just_first(results_dir, capsys):
    (results_dir / "a_bad.json").write_text('{"x": Infinity}')
    (results_dir / "z_bad.json").write_text("[]")
    assert validate_results.main([str(results_dir)]) == 1
    err = capsys.readouterr().err
    assert "a_bad.json" in err and "z_bad.json" in err


# ---------------------------------------------------------------------------
# observability artifacts: --trace / --metrics (docs/OBSERVABILITY.md)
# ---------------------------------------------------------------------------


def _write_valid_obs_pair(tmp_path):
    from repro import obs

    obs.configure(
        trace_path=tmp_path / "t.json", metrics_path=tmp_path / "m.json"
    )
    try:
        with obs.span("decode.kernel"):
            pass
        obs.count("sweep.batches_dispatched")
        obs.write_trace()
        obs.write_metrics()
    finally:
        obs.reset()
    return tmp_path / "t.json", tmp_path / "m.json"


def test_real_obs_artifacts_validate_clean(tmp_path, capsys):
    trace, metrics = _write_valid_obs_pair(tmp_path)
    rc = validate_results.main(["--trace", str(trace), "--metrics", str(metrics)])
    assert rc == 0
    assert "0 problems" in capsys.readouterr().out


def test_trace_wrong_schema_rejected(tmp_path, capsys):
    bad = tmp_path / "t.json"
    bad.write_text(json.dumps({"schema": "nope/v0", "traceEvents": [
        {"name": "x", "ph": "X", "ts": 0, "dur": 1, "pid": 1}
    ]}))
    assert validate_results.main(["--trace", str(bad)]) == 1
    assert "schema" in capsys.readouterr().err


def test_trace_structural_problems_rejected(tmp_path, capsys):
    bad = tmp_path / "t.json"
    # empty traceEvents, an event missing required keys, an unknown phase,
    # and a complete event without dur must each be reported
    bad.write_text(json.dumps({
        "schema": validate_results.TRACE_SCHEMA,
        "traceEvents": [
            {"name": "a", "ph": "Z", "ts": 0, "pid": 1},
            {"name": "b", "ph": "X", "ts": -5, "pid": 1},
            {"ph": "X", "ts": 0, "dur": 1, "pid": 1},
        ],
    }))
    assert validate_results.main(["--trace", str(bad)]) == 1
    err = capsys.readouterr().err
    assert "unknown phase" in err
    assert "without dur" in err
    assert "missing keys" in err
    assert "negative ts" in err


def test_metrics_count_mismatch_rejected(tmp_path, capsys):
    trace, metrics = _write_valid_obs_pair(tmp_path)
    snap = json.loads(metrics.read_text())
    name, hist = next(iter(snap["histograms"].items()))
    hist["count"] += 1  # no longer the sum of the bucket counts
    metrics.write_text(json.dumps(snap))
    assert validate_results.main(["--metrics", str(metrics)]) == 1
    assert "sum of bucket" in capsys.readouterr().err


def test_metrics_bad_counts_shape_rejected(tmp_path, capsys):
    bad = tmp_path / "m.json"
    bad.write_text(json.dumps({
        "schema": validate_results.METRICS_SCHEMA,
        "counters": {"ok": 1, "bad": -2},
        "histograms": {
            "h": {"bucket_bounds_ns": [100, 200], "counts": [1, 0],
                  "count": 1, "sum_ns": 50},
        },
    }))
    assert validate_results.main(["--metrics", str(bad)]) == 1
    err = capsys.readouterr().err
    assert "non-negative integer" in err          # counter 'bad'
    assert "bounds+1" in err                      # counts length mismatch


def test_unreadable_obs_artifact_rejected(tmp_path, capsys):
    missing = tmp_path / "nope.json"
    assert validate_results.main(["--trace", str(missing)]) == 1
    assert "unreadable" in capsys.readouterr().err


def test_obs_flags_compose_with_directory_validation(results_dir, tmp_path, capsys):
    trace, metrics = _write_valid_obs_pair(tmp_path)
    rc = validate_results.main(
        [str(results_dir), "--trace", str(trace), "--metrics", str(metrics)]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "0 invalid" in out


# ---------------------------------------------------------------------------
# run ledger + perf history: --ledger / --history (docs/OBSERVABILITY.md)
# ---------------------------------------------------------------------------


def _write_valid_rundir(tmp_path, run_id="20260808T120000Z-deadbeef"):
    rundir = tmp_path / "runs" / run_id
    rundir.mkdir(parents=True)
    (rundir / "manifest.json").write_text(json.dumps({
        "schema": validate_results.RUN_SCHEMA,
        "run_id": run_id,
        "sweep": "unit",
        "spec_digest": "ab" * 32,
        "store_salt": "repro-store-v2",
        "status": "ok",
        "created_at": 1.0,
    }))
    (rundir / "events.jsonl").write_text(
        json.dumps({"ev": "run_start", "t": 1.0, "pid": 1}) + "\n"
        + json.dumps({"ev": "batch", "t": 2.0, "pid": 1, "kind": "decoded"}) + "\n"
        + json.dumps({"ev": "run_finish", "t": 3.0, "pid": 1, "status": "ok"}) + "\n"
    )
    return rundir


def test_ledger_valid_rundir_passes(tmp_path, capsys):
    rundir = _write_valid_rundir(tmp_path)
    assert validate_results.main(["--ledger", str(rundir)]) == 0
    assert "0 problems" in capsys.readouterr().out


def test_ledger_torn_tail_line_is_tolerated(tmp_path, capsys):
    # a crash mid-append leaves a truncated final line: not a failure
    rundir = _write_valid_rundir(tmp_path)
    with open(rundir / "events.jsonl", "a") as f:
        f.write('{"ev": "heartbeat", "t": 4.0, "pi')
    assert validate_results.main(["--ledger", str(rundir)]) == 0


def test_ledger_garbage_mid_log_rejected(tmp_path, capsys):
    rundir = _write_valid_rundir(tmp_path)
    lines = (rundir / "events.jsonl").read_text().splitlines()
    lines.insert(1, "not json at all")
    (rundir / "events.jsonl").write_text("\n".join(lines) + "\n")
    assert validate_results.main(["--ledger", str(rundir)]) == 1
    assert "not valid JSON" in capsys.readouterr().err


def test_ledger_manifest_problems_rejected(tmp_path, capsys):
    rundir = _write_valid_rundir(tmp_path)
    manifest = json.loads((rundir / "manifest.json").read_text())
    del manifest["spec_digest"]
    manifest["schema"] = "nope/v0"
    (rundir / "manifest.json").write_text(json.dumps(manifest))
    assert validate_results.main(["--ledger", str(rundir)]) == 1
    err = capsys.readouterr().err
    assert "schema" in err and "spec_digest" in err


def test_ledger_event_shape_problems_rejected(tmp_path, capsys):
    rundir = _write_valid_rundir(tmp_path)
    (rundir / "events.jsonl").write_text(
        json.dumps({"ev": "batch", "t": 1.0, "pid": 1}) + "\n"   # not run_start
        + json.dumps({"ev": "warp_core_breach", "t": 2.0}) + "\n"
        + json.dumps({"t": 3.0}) + "\n"                           # no ev
    )
    assert validate_results.main(["--ledger", str(rundir)]) == 1
    err = capsys.readouterr().err
    assert "expected 'run_start'" in err
    assert "unknown event" in err
    assert "ev/t" in err


def test_ledger_missing_rundir_rejected(tmp_path, capsys):
    assert validate_results.main(["--ledger", str(tmp_path / "nope")]) == 1
    assert "unreadable" in capsys.readouterr().err


def _write_valid_history(tmp_path):
    path = tmp_path / "history.jsonl"
    entry = {
        "schema": validate_results.HISTORY_SCHEMA,
        "source": "decode_throughput.json",
        "meta": {"python": "3.12.0", "cpu_count": 4},
        "manifest_key": "ab" * 8,
        "series": {"dedup_shots_per_sec": 100000.0},
    }
    path.write_text(json.dumps(entry) + "\n" + json.dumps(entry) + "\n")
    return path


def test_history_valid_file_passes(tmp_path, capsys):
    path = _write_valid_history(tmp_path)
    assert validate_results.main(["--history", str(path)]) == 0
    assert "0 problems" in capsys.readouterr().out


def test_history_torn_tail_is_tolerated(tmp_path):
    path = _write_valid_history(tmp_path)
    with open(path, "a") as f:
        f.write('{"schema": "repro.bench.hist')
    assert validate_results.main(["--history", str(path)]) == 0


def test_history_bad_entries_rejected(tmp_path, capsys):
    path = tmp_path / "history.jsonl"
    path.write_text(
        json.dumps({
            "schema": "nope/v0",
            "source": "",
            "meta": [],
            "manifest_key": 7,
            "series": {"rate": "fast", "t": 1.0},
        }) + "\n"
    )
    assert validate_results.main(["--history", str(path)]) == 1
    err = capsys.readouterr().err
    assert "schema" in err
    assert "source" in err
    assert "meta" in err
    assert "manifest_key" in err
    assert "not a number" in err


def test_history_empty_file_rejected(tmp_path, capsys):
    path = tmp_path / "history.jsonl"
    path.write_text("")
    assert validate_results.main(["--history", str(path)]) == 1
    assert "no parseable history entries" in capsys.readouterr().err
