"""Exit-code tests for ``scripts/validate_results.py``.

The validator is the last gate before benchmark artifacts ship; these
tests pin its contract: clean directory -> 0, any corruption (NaN,
truncated JSON, empty payloads, missing required keys, missing dir) -> 1,
with every problem listed on stderr.
"""

import importlib.util
import json
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[1]

spec = importlib.util.spec_from_file_location(
    "validate_results", REPO / "scripts" / "validate_results.py"
)
validate_results = importlib.util.module_from_spec(spec)
spec.loader.exec_module(validate_results)


@pytest.fixture
def results_dir(tmp_path):
    d = tmp_path / "results"
    d.mkdir()
    (d / "custom_rows.json").write_text(
        json.dumps([{"d": 3, "p": 1e-3, "ler": 2.5e-4}, {"d": 5, "p": 1e-3, "ler": 1.1e-5}])
    )
    return d


def test_clean_directory_exits_zero(results_dir, capsys):
    assert validate_results.main([str(results_dir)]) == 0
    assert "0 invalid" in capsys.readouterr().out


def test_repo_results_directory_is_valid():
    shipped = REPO / "benchmarks" / "results"
    if not shipped.is_dir():
        pytest.skip("repo ships no benchmark results")
    assert validate_results.main([str(shipped)]) == 0


def test_nan_rate_exits_nonzero(results_dir, capsys):
    # json.dump happily writes NaN; the validator must reject it
    (results_dir / "bad_nan.json").write_text('{"config": {}, "ler": NaN}')
    assert validate_results.main([str(results_dir)]) == 1
    assert "bad_nan.json" in capsys.readouterr().err


def test_truncated_json_exits_nonzero(results_dir, capsys):
    (results_dir / "truncated.json").write_text('{"config": {"d": 3}, "rows": [')
    assert validate_results.main([str(results_dir)]) == 1
    assert "invalid JSON" in capsys.readouterr().err


def test_empty_payload_exits_nonzero(results_dir, capsys):
    (results_dir / "empty_list.json").write_text("[]")
    (results_dir / "empty_row.json").write_text("[{}]")
    assert validate_results.main([str(results_dir)]) == 1
    err = capsys.readouterr().err
    assert "empty_list.json" in err and "empty_row.json" in err


def test_missing_required_keys_exits_nonzero(results_dir, capsys):
    # a file the repo's harness owns must carry its schema keys
    (results_dir / "decode_backends.json").write_text('{"mwpm": {}}')
    assert validate_results.main([str(results_dir)]) == 1
    assert "unionfind" in capsys.readouterr().err


def test_missing_directory_exits_nonzero(tmp_path, capsys):
    assert validate_results.main([str(tmp_path / "nope")]) == 1
    assert "not found" in capsys.readouterr().err


def test_empty_directory_exits_nonzero(tmp_path, capsys):
    empty = tmp_path / "results"
    empty.mkdir()
    assert validate_results.main([str(empty)]) == 1
    assert "no result files" in capsys.readouterr().err


def test_all_problems_listed_not_just_first(results_dir, capsys):
    (results_dir / "a_bad.json").write_text('{"x": Infinity}')
    (results_dir / "z_bad.json").write_text("[]")
    assert validate_results.main([str(results_dir)]) == 1
    err = capsys.readouterr().err
    assert "a_bad.json" in err and "z_bad.json" in err
