"""Positive fixture: deterministic spellings of the same operations.

Linting this file with the full determinism/hygiene family must produce
zero findings — monotonic timers, seeded generators, sorted set
iteration, membership tests, documented ``REPRO_*`` knobs and a
pragma-acknowledged wall-clock read are all allowed.
"""

import os
import time

import numpy as np


def duration(fn):
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def seeded_rng(seed):
    return np.random.default_rng(seed)


def spawned(seed, n):
    return np.random.SeedSequence(seed).spawn(n)


def ordered(values):
    return [v for v in sorted(set(values))]


def membership(values, x):
    return x in set(values)


def env_knob():
    return os.environ.get("REPRO_EXAMPLE_KNOB", "0")


def acknowledged_metadata_stamp():
    return time.time()  # lint: ok[determinism-time] fixture: metadata only


def safe_default(x, acc=None):
    acc = [] if acc is None else acc
    acc.append(x)
    return acc
