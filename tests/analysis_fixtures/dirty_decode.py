"""Negative fixture for the determinism/hygiene lint rules.

Never imported — only parsed by ``repro.analysis`` in tests.  Every
violating line carries a ``# HIT <rule>`` marker; the test derives the
expected (rule, line) set from these markers, so the fixture can be
edited without renumbering assertions.
"""

import os
import random
import secrets
import time
import uuid
from datetime import datetime

import numpy as np


def stamp():
    return time.time()  # HIT determinism-time


def stamp_dt():
    return datetime.now()  # HIT determinism-time


def fresh_rng():
    return np.random.default_rng()  # HIT determinism-rng


def global_draws():
    random.shuffle([1, 2])  # HIT determinism-rng
    return np.random.rand(3)  # HIT determinism-rng


def entropy():
    os.urandom(8)  # HIT determinism-entropy
    secrets.token_hex(4)  # HIT determinism-entropy
    return uuid.uuid4()  # HIT determinism-entropy


def key_of(obj):
    return id(obj)  # HIT determinism-id


def unordered(values):
    out = []
    for v in set(values):  # HIT determinism-set-order
        out.append(v)
    return out + list({1, 2, 3})  # HIT determinism-set-order


def env_reads():
    a = os.environ.get("HOME")  # HIT determinism-env
    b = os.getenv("PATH")  # HIT determinism-env
    c = os.environ["SHELL"]  # HIT determinism-env
    return a, b, c


def mutable_default(x, acc=[]):  # HIT hygiene-mutable-default
    acc.append(x)
    return acc


def swallow():
    try:
        return 1
    except:  # HIT hygiene-bare-except
        return 2
