"""Negative fixture for the kernel-backend registry contract rule.

Pointed at via the ``backends_module`` config override in tests; never
imported.  ``GoodTerminal`` is the legal chain terminal; the other three
each violate one leg of the availability/fallback protocol.
"""

from repro.decoders.kernels.base import KernelBackend


class GoodTerminal(KernelBackend):
    name = "python"


class MissingAvailable(KernelBackend):  # HIT contract-backend-registry
    name = "cext"
    fallback = "python"


class MissingFallback(KernelBackend):  # HIT contract-backend-registry
    name = "gpu"

    def available(self):
        return False


class NoName(KernelBackend):  # HIT contract-backend-registry
    fallback = "python"
