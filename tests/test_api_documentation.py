"""Documentation contract: every public API item carries a docstring."""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.stab",
    "repro.codes",
    "repro.noise",
    "repro.timing",
    "repro.core",
    "repro.decoders",
    "repro.workloads",
    "repro.casestudies",
    "repro.experiments",
    "repro.analysis",
    "repro.figures",
]


def _all_modules():
    out = []
    for name in PACKAGES:
        mod = importlib.import_module(name)
        out.append(mod)
        if hasattr(mod, "__path__"):
            for info in pkgutil.iter_modules(mod.__path__):
                if not info.name.startswith("_"):
                    out.append(importlib.import_module(f"{name}.{info.name}"))
    return out


@pytest.mark.parametrize("module", _all_modules(), ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), f"{module.__name__} lacks a docstring"


@pytest.mark.parametrize("module", _all_modules(), ids=lambda m: m.__name__)
def test_public_items_documented(module):
    undocumented = []
    public = getattr(module, "__all__", None)
    if public is None:
        return
    for name in public:
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if obj.__doc__ is None or not obj.__doc__.strip():
                undocumented.append(name)
            if inspect.isclass(obj):
                for mname, method in vars(obj).items():
                    if mname.startswith("_") or not inspect.isfunction(method):
                        continue
                    if method.__doc__ is None or not method.__doc__.strip():
                        undocumented.append(f"{name}.{mname}")
    assert not undocumented, f"{module.__name__}: undocumented public items {undocumented}"
