"""Tests for the declarative figure registry (``repro.figures``).

Four layers:

* **registry** — canonical names, the alias table, unknown-name errors and
  the parameter schema (unknown overrides raise in strict mode);
* **export round-trips** — the uniform result document, CSV and Vega-Lite
  emitters, validated against the shipping ``scripts/validate_results.py``
  schema checks;
* **store behaviour** — a warm store serves rebuilds from the figure cache
  with zero decoding (asserted via store mtime-diff *and* a builder swapped
  for one that raises) and ``store=False`` never touches a store;
* **CLI** — ``repro figures list|build``, including exit 2 on unknown
  names/params and ``build --all`` against a warm store.
"""

import importlib.util
import json
from pathlib import Path

import pytest

from repro import cli
from repro.figures import (
    ALIASES,
    CACHE_SCHEMA,
    FIGURE_BUILDERS,
    build_figure,
    canonical_name,
    categories,
    figure_cache_key,
    format_table,
    get,
    names,
    rows_to_csv,
    vega_document,
    write_outputs,
)
from repro.figures import export as fig_export
from repro.store import ResultStore

REPO = Path(__file__).resolve().parents[1]

_spec = importlib.util.spec_from_file_location(
    "validate_results", REPO / "scripts" / "validate_results.py"
)
validate_results = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(validate_results)

#: tiny sweep-backed configuration: d=2 at 120 shots decodes in milliseconds
TINY = {"distances": (2,), "taus_ns": (500.0,), "shots": 120, "seed": 7}

#: paper values pinned by benchmarks/test_fig10_extra_rounds.py
FIG10_PAPER = [None, 5, 11, 22, 26, 52, 34, 68]


def _boom(params):
    raise AssertionError("builder must not run on a store-served rebuild")


def _store_snapshot(root: Path) -> dict:
    return {p: p.stat().st_mtime_ns for p in sorted(root.rglob("*.json"))}


# ---------------------------------------------------------------- registry


def test_every_spec_is_registered_and_well_formed():
    assert len(FIGURE_BUILDERS) >= 23
    for name in names():
        spec = get(name)
        assert spec.name == name
        assert spec.category in ("analytic", "sampled", "ler-sweep", "engine")
        assert spec.anchor and spec.title and spec.columns
        assert callable(spec.builder)


def test_alias_resolution():
    for alias, canonical in ALIASES.items():
        assert canonical_name(alias) == canonical
        assert get(alias) is get(canonical)
    # canonical names resolve to themselves
    assert canonical_name("fig14_ibm") == "fig14_ibm"


def test_unknown_name_raises_with_known_list():
    with pytest.raises(KeyError, match="unknown figure 'fig999'"):
        canonical_name("fig999")


def test_categories_cover_all_names():
    grouped = categories()
    assert sorted(n for group in grouped.values() for n in group) == sorted(names())


def test_resolve_params_strict_rejects_unknown_keys():
    spec = get("fig10")
    with pytest.raises(ValueError, match="unknown parameter"):
        spec.resolve_params({"bogus": 1})
    # non-strict drops them instead (bulk --all overrides)
    assert "bogus" not in spec.resolve_params({"bogus": 1}, strict=False)


def test_alias_build_equals_canonical_build():
    a = build_figure("fig01c", {"shots": 200, "seed": 7}, store=False)
    b = build_figure("fig1c", {"shots": 200, "seed": 7}, store=False)
    assert a.spec.name == b.spec.name == "fig1c"
    assert a.rows == b.rows


# ------------------------------------------------------------ export layer


def test_fig10_document_round_trip(tmp_path):
    result = build_figure("fig10", store=False)
    assert [r["extra_rounds"] for r in result.rows] == FIG10_PAPER

    doc = result.document()
    assert doc["schema"] == fig_export.RESULT_SCHEMA
    assert doc["figure"] == "fig10"
    assert validate_results._figure_document_problems(doc) == []

    paths = write_outputs(doc, tmp_path, ("json", "csv", "vega"), hints=result.spec.vega)
    assert [p.name for p in paths] == ["fig10.json", "fig10.csv", "fig10.vega.json"]

    # JSON: the document itself, schema-validated by the shipping validator
    assert validate_results.validate_figure_file(paths[0]) == []
    reread = json.loads(paths[0].read_text())
    assert reread["rows"] == doc["rows"]
    # auto-detection: the generic results check applies the figure schema
    assert validate_results.validate_file(paths[0]) == []

    # CSV: header is the column order, one line per row, None cells blank
    lines = paths[1].read_text().splitlines()
    assert lines[0] == ",".join(doc["columns"])
    assert len(lines) == 1 + len(doc["rows"])
    assert lines[1].endswith(",")  # extra_rounds=None -> blank cell

    # Vega: themed Vega-Lite doc carrying the same rows
    assert validate_results.validate_vega_file(paths[2]) == []
    vega = json.loads(paths[2].read_text())
    assert vega["data"]["values"] == doc["rows"]
    assert vega["mark"] == result.spec.vega["mark"]


def test_unknown_export_format_raises(tmp_path):
    doc = build_figure("fig10", store=False).document()
    with pytest.raises(ValueError, match="unknown export format"):
        write_outputs(doc, tmp_path, ("parquet",))


def test_plain_maps_non_finite_to_none():
    assert fig_export.plain(float("inf")) is None
    assert fig_export.plain({"a": float("nan"), "b": 1.5}) == {"a": None, "b": 1.5}


def test_rows_to_csv_and_format_table_cover_missing_columns():
    rows = [{"a": 1}, {"a": 2, "b": "x"}]
    csv_text = rows_to_csv(("a", "b"), rows)
    assert csv_text.splitlines() == ["a,b", "1,", "2,x"]
    doc = {"figure": "t", "anchor": "T", "title": "t", "columns": ["a", "b"], "rows": rows}
    table = format_table(doc)
    assert "a" in table and "-" in table  # missing cell rendered as '-'
    assert vega_document(doc)["encoding"]["x"]["field"] == "a"


# ---------------------------------------------------------- store behaviour


def test_store_served_rebuild_decodes_nothing(tmp_path, monkeypatch):
    store = ResultStore(tmp_path / "store")
    cold = build_figure("fig14_ibm", TINY, store=store)
    assert cold.served_from_store is False
    assert cold.rows

    snapshot = _store_snapshot(tmp_path / "store")
    assert snapshot  # points + figure cache records landed

    warm = build_figure("fig14_ibm", TINY, store=store)
    assert warm.served_from_store is True
    assert warm.rows == cold.rows
    # zero decoding also means zero store writes: no file added or touched
    assert _store_snapshot(tmp_path / "store") == snapshot

    # swap the builder for a tripwire: a warm build must never invoke it
    spec = get("fig14_ibm")
    monkeypatch.setitem(FIGURE_BUILDERS, "fig14_ibm", spec.with_builder(_boom))
    tripwired = build_figure("fig14_ibm", TINY, store=store)
    assert tripwired.served_from_store is True
    assert tripwired.rows == cold.rows


def test_param_change_misses_the_cache(tmp_path):
    store = ResultStore(tmp_path / "store")
    build_figure("fig14_ibm", TINY, store=store)
    changed = build_figure("fig14_ibm", dict(TINY, seed=8), store=store)
    assert changed.served_from_store is False
    assert figure_cache_key("fig14_ibm", TINY) != figure_cache_key(
        "fig14_ibm", dict(TINY, seed=8)
    )


def test_storeless_build_ignores_default_store(tmp_path, monkeypatch):
    # REPRO_STORE_ROOT active in the environment must not leak into
    # store=False builds — the benchmark numbers are shared-stream storeless
    monkeypatch.setenv("REPRO_STORE_ROOT", str(tmp_path / "env-store"))
    result = build_figure("fig10", store=False)
    assert result.served_from_store is False
    assert not (tmp_path / "env-store").exists()


# ------------------------------------------------------------------- CLI


def test_cli_list_text_and_json(capsys):
    assert cli.main(["figures", "list"]) == 0
    out = capsys.readouterr().out
    assert "fig1c" in out and "table5" in out and "alias: fig01c" in out

    assert cli.main(["figures", "list", "--format", "json"]) == 0
    rows = json.loads(capsys.readouterr().out)
    assert [r["name"] for r in rows] == names()
    assert all({"category", "anchor", "title", "params"} <= set(r) for r in rows)


def test_cli_build_unknown_name_exits_2(tmp_path, capsys):
    rc = cli.main(["figures", "build", "fig999", "--no-store", "--out", str(tmp_path)])
    assert rc == 2
    assert "unknown figure" in capsys.readouterr().err


def test_cli_build_unknown_param_exits_2(tmp_path, capsys):
    rc = cli.main([
        "figures", "build", "fig10", "--no-store", "--out", str(tmp_path),
        "--param", "bogus=1",
    ])
    assert rc == 2
    assert "unknown parameter" in capsys.readouterr().err


def test_cli_build_requires_names_or_all(tmp_path, capsys):
    assert cli.main(["figures", "build", "--no-store", "--out", str(tmp_path)]) == 2
    assert "NAME... or --all" in capsys.readouterr().err


def test_cli_build_alias_writes_canonical_files(tmp_path, capsys):
    rc = cli.main([
        "figures", "build", "fig01c", "--no-store", "--out", str(tmp_path),
        "--shots", "200", "--seed", "7",
        "--format", "json", "--format", "csv", "--format", "vega",
    ])
    assert rc == 0
    assert "[fig1c]" in capsys.readouterr().out
    for suffix in (".json", ".csv", ".vega.json"):
        assert (tmp_path / f"fig1c{suffix}").exists()
    assert validate_results.validate_figure_file(tmp_path / "fig1c.json") == []
    assert validate_results.validate_vega_file(tmp_path / "fig1c.vega.json") == []


def test_cli_build_all_from_warm_store_decodes_nothing(tmp_path, capsys, monkeypatch):
    store_root = tmp_path / "store"
    out = tmp_path / "figs"
    store = ResultStore(store_root)

    # warm the figure cache for every spec at its default params, then swap
    # every builder for a tripwire: --all must be served entirely from store
    for name in names():
        spec = get(name)
        params = spec.resolve_params({})
        store.put(
            figure_cache_key(name, params),
            {
                "schema": CACHE_SCHEMA,
                "figure": name,
                "params": fig_export.plain(params),
                "rows": [{spec.columns[0]: 1}],
            },
        )
        monkeypatch.setitem(FIGURE_BUILDERS, name, spec.with_builder(_boom))

    rc = cli.main([
        "figures", "build", "--all", "--store", str(store_root), "--out", str(out),
    ])
    assert rc == 0
    lines = [ln for ln in capsys.readouterr().out.splitlines() if ln.startswith("[")]
    assert len(lines) == len(names())
    assert all("(store)" in ln for ln in lines)
    for name in names():
        assert (out / f"{name}.json").exists()


def test_cli_build_all_rejects_explicit_names(tmp_path, capsys):
    rc = cli.main([
        "figures", "build", "fig10", "--all", "--no-store", "--out", str(tmp_path),
    ])
    assert rc == 2
    assert "not both" in capsys.readouterr().err
