"""Circuit text-format round-trip tests."""

import numpy as np
import pytest

from repro.codes import SurgerySpec, memory_experiment, surgery_experiment
from repro.stab import Circuit, FrameSimulator
from repro.stab.text import circuit_from_text, circuit_to_text


def _equivalent(a: Circuit, b: Circuit) -> bool:
    if len(a.instructions) != len(b.instructions):
        return False
    for x, y in zip(a.instructions, b.instructions):
        if (x.name, x.targets, x.rec, x.basis, x.obs_index) != (
            y.name,
            y.targets,
            y.rec,
            y.basis,
            y.obs_index,
        ):
            return False
        if len(x.args) != len(y.args) or any(
            abs(p - q) > 1e-12 for p, q in zip(x.args, y.args)
        ):
            return False
        if len(x.coords) != len(y.coords):
            return False
    return True


def test_simple_round_trip():
    c = Circuit()
    c.append("R", [0, 1])
    c.append("X_ERROR", [0], [0.001])
    c.append("CX", [0, 1])
    m = c.append("MR", [1])
    c.detector(m, coords=(1.0, 0.0), basis="Z")
    m2 = c.append("M", [0])
    c.observable_include(0, m2)
    text = circuit_to_text(c)
    parsed = circuit_from_text(text)
    assert _equivalent(c, parsed)


def test_memory_circuit_round_trip(ibm_noise):
    art = memory_experiment(3, 2, ibm_noise)
    parsed = circuit_from_text(circuit_to_text(art.circuit))
    assert _equivalent(art.circuit, parsed)
    assert parsed.num_detectors == art.circuit.num_detectors
    assert parsed.num_observables == art.circuit.num_observables


def test_surgery_circuit_round_trip_samples_identically(google_noise):
    art = surgery_experiment(SurgerySpec(distance=2, noise=google_noise))
    parsed = circuit_from_text(circuit_to_text(art.circuit))
    det_a, obs_a = FrameSimulator(art.circuit).sample(2000, rng=5)
    det_b, obs_b = FrameSimulator(parsed).sample(2000, rng=5)
    assert np.array_equal(det_a, det_b)
    assert np.array_equal(obs_a, obs_b)


def test_comments_and_blank_lines_ignored():
    text = """
    # a comment
    R 0

    M 0   # trailing comment
    DETECTOR rec[0]
    """
    c = circuit_from_text(text)
    assert c.num_detectors == 1


def test_parse_errors():
    with pytest.raises(ValueError):
        circuit_from_text("FROB 0")
    with pytest.raises(ValueError):
        circuit_from_text("lowercase 0")
    with pytest.raises(ValueError):
        circuit_from_text("OBSERVABLE_INCLUDE")
