"""Logical-clock and idle-schedule tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.noise import IBM
from repro.timing import LogicalClock, PatchTimeline, RoundIdle


def test_round_idle_total():
    r = RoundIdle(pre_ns=100.0, intra_ns=50.0)
    assert r.total_ns == 150.0


def test_uniform_timeline_accounting():
    tl = PatchTimeline.uniform(4, pre_ns=250.0, final_idle_ns=100.0)
    assert tl.num_rounds == 4
    assert tl.total_idle_ns == pytest.approx(1100.0)


def test_wall_time_includes_idles():
    tl = PatchTimeline.uniform(3, pre_ns=100.0)
    assert tl.wall_time_ns(IBM) == pytest.approx(3 * IBM.cycle_time_ns + 300.0)


def test_clock_phase_and_remaining():
    clk = LogicalClock(cycle_ns=1000.0)
    assert clk.phase_at(0.0) == 0.0
    assert clk.phase_at(250.0) == 250.0
    assert clk.time_to_cycle_end(250.0) == 750.0
    assert clk.time_to_cycle_end(1000.0) == 0.0
    assert clk.completed_cycles(2500.0) == 2


def test_clock_with_offset():
    clk = LogicalClock(cycle_ns=1000.0, start_ns=300.0)
    assert clk.phase_at(300.0) == 0.0
    assert clk.phase_at(800.0) == 500.0
    with pytest.raises(ValueError):
        clk.phase_at(0.0)


def test_slack_against_other_clock():
    fast = LogicalClock(cycle_ns=1000.0)
    slow = LogicalClock(cycle_ns=1300.0)
    t = 500.0
    slack = fast.slack_against(slow, t)
    # fast finishes at 1000, slow at 1300 -> fast waits 300
    assert slack == pytest.approx(300.0)
    assert slow.slack_against(fast, t) == pytest.approx((500.0 - 800.0) % 1000.0)


@given(
    cycle=st.integers(10, 5000),
    t=st.integers(0, 100_000),
)
def test_clock_phase_invariants(cycle, t):
    clk = LogicalClock(cycle_ns=float(cycle))
    phase = clk.phase_at(float(t))
    assert 0 <= phase < cycle
    remaining = clk.time_to_cycle_end(float(t))
    assert 0 <= remaining < cycle or remaining == 0
    assert (phase + remaining) % cycle == pytest.approx(0.0)


@given(
    cycle_a=st.integers(100, 3000),
    cycle_b=st.integers(100, 3000),
    t=st.integers(0, 50_000),
)
def test_slack_is_bounded_by_other_cycle(cycle_a, cycle_b, t):
    a = LogicalClock(cycle_ns=float(cycle_a))
    b = LogicalClock(cycle_ns=float(cycle_b))
    slack = a.slack_against(b, float(t))
    assert 0 <= slack < cycle_b
