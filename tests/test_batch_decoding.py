"""Batch decoding engine tests: dedup equivalence, caching, streaming, sharding.

Covers the decoder-equivalence contract (``decode_batch(dets)`` equals the
per-shot ``decode`` loop for every decoder), the syndrome memo cache, the
streaming LER pipeline and its regression fixes (empty sampling, fair-coin
errors, explicit detector masking, bounded pipeline cache), and the
worker-count independence of sharded parallel decoding.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.codes import memory_experiment
from repro.codes.repetition import repetition_experiment
from repro.core import make_policy
from repro.decoders import (
    BatchDecodingEngine,
    LookupTableDecoder,
    MWPMDecoder,
    PredecodedDecoder,
    SyndromeCache,
    UnionFindDecoder,
    build_matching_graph,
    expand_obs_masks,
)
from repro.decoders.hierarchical import HierarchicalDecoder
from repro.experiments import ler as ler_module
from repro.experiments import run_surgery_ler
from repro.experiments.ler import SurgeryLerConfig, _pad_predictions, prepared_pipeline
from repro.experiments.parallel import run_sharded_ler, shard_tasks
from repro.noise import GOOGLE, NoiseModel
from repro.stab import DemSampler, circuit_to_dem
from repro.stab.dem import DemError, DetectorErrorModel


def _expand_reference(masks, nobs):
    """Independent (slow) bitmask expansion used to check the vectorized one."""
    out = np.zeros((len(masks), nobs), dtype=bool)
    for s, mask in enumerate(masks):
        for o in range(nobs):
            out[s, o] = bool(mask >> o & 1)
    return out


@pytest.fixture(scope="module")
def surface_fixture():
    noise = NoiseModel(hardware=GOOGLE, p=2e-3, idle_scale=0.0)
    art = memory_experiment(3, 3, noise)
    dem = circuit_to_dem(art.circuit)
    graph = build_matching_graph(dem, basis="Z")
    det, _ = DemSampler(dem).sample(4000, rng=11)
    return graph, det


@pytest.fixture(scope="module")
def repetition_fixture():
    noise = NoiseModel(hardware=GOOGLE, p=1e-2)
    art = repetition_experiment(3, 2, noise)
    dem = circuit_to_dem(art.circuit)
    graph = build_matching_graph(dem, basis="Z")
    det, _ = DemSampler(dem).sample(2000, rng=12)
    return graph, det


# ---------------------------------------------------------------------------
# decoder equivalence: decode_batch == per-shot decode loop, for all decoders
# ---------------------------------------------------------------------------


def test_expand_obs_masks_matches_reference():
    masks = [0, 1, 2, 3, 5, (1 << 63) | 1]
    for nobs in (0, 1, 2, 64):
        got = expand_obs_masks(np.array(masks, dtype=np.uint64), nobs)
        assert np.array_equal(got, _expand_reference(masks, nobs))


@pytest.mark.parametrize("factory", ["unionfind", "mwpm", "predecoder", "hierarchical"])
def test_decode_batch_equals_per_shot_loop(surface_fixture, factory):
    graph, det = surface_fixture
    det = det[:600]

    def build():
        if factory == "unionfind":
            return UnionFindDecoder(graph)
        if factory == "mwpm":
            return MWPMDecoder(graph)
        if factory == "predecoder":
            return PredecodedDecoder(graph, UnionFindDecoder(graph))
        return HierarchicalDecoder(graph, lut_size_bytes=4096)

    dec = build()
    batched = dec.decode_batch(det)
    reference = _expand_reference(
        [build().decode(det[s]) for s in range(det.shape[0])], graph.num_observables
    )
    assert np.array_equal(batched, reference)
    assert np.array_equal(build().decode_batch(det, dedup=False), reference)
    if factory == "hierarchical":
        with_stats, stats = build().decode_batch_stats(det, rng=0)
        assert np.array_equal(with_stats, reference)
        assert stats.shots == det.shape[0]


def test_lut_decode_batch_equals_per_shot_loop(repetition_fixture):
    graph, det = repetition_fixture
    lut = LookupTableDecoder(graph, max_errors=4)
    reference = _expand_reference(
        [lut.decode(det[s]) for s in range(det.shape[0])], graph.num_observables
    )
    assert np.array_equal(lut.decode_batch(det), reference)
    assert np.array_equal(lut.decode_batch(det, dedup=False), reference)


def test_decode_batch_on_random_syndromes(surface_fixture):
    graph, _ = surface_fixture
    rng = np.random.default_rng(99)
    det = rng.random((120, graph.num_detectors)) < 0.05
    dec = UnionFindDecoder(graph)
    reference = _expand_reference(
        [dec.decode(det[s]) for s in range(det.shape[0])], graph.num_observables
    )
    assert np.array_equal(dec.decode_batch(det), reference)


def test_predecoder_declines_memo_cache_to_keep_stats_exact(surface_fixture):
    graph, det = surface_fixture
    dec = PredecodedDecoder(graph, UnionFindDecoder(graph))
    engine = BatchDecodingEngine(dec, dedup=True, cache_size=1 << 14)
    engine.decode_batch(det[:1000])
    engine.decode_batch(det[:1000])  # identical batch: cache hits would skip stats
    assert dec.stats.shots == 2000
    assert engine.stats.cache_hits == 0


def test_engine_without_dedup_builds_no_cache(surface_fixture):
    graph, _ = surface_fixture
    engine = BatchDecodingEngine(UnionFindDecoder(graph), dedup=False, cache_size=1 << 14)
    assert engine.cache is None


def test_predecoder_stats_exact_under_dedup(surface_fixture):
    graph, det = surface_fixture
    a = PredecodedDecoder(graph, UnionFindDecoder(graph))
    a.decode_batch(det)
    b = PredecodedDecoder(graph, UnionFindDecoder(graph))
    b.decode_batch(det, dedup=False)
    assert vars(a.stats) == vars(b.stats)
    assert a.stats.shots == det.shape[0]


# ---------------------------------------------------------------------------
# dedup + memo cache mechanics
# ---------------------------------------------------------------------------


class _CountingUnionFind(UnionFindDecoder):
    def __init__(self, graph):
        super().__init__(graph)
        self.calls = 0

    def decode(self, detectors):
        self.calls += 1
        return super().decode(detectors)

    def _decode_one_defects(self, defects, multiplicity=1):
        self.calls += 1
        return super()._decode_one_defects(defects, multiplicity)


def test_dedup_decodes_each_distinct_syndrome_once(surface_fixture):
    graph, det = surface_fixture
    det = det[:1000]
    distinct = np.unique(np.packbits(det, axis=-1), axis=0).shape[0]
    dec = _CountingUnionFind(graph)
    dec.decode_batch(det)
    assert dec.calls == distinct < det.shape[0]


def test_syndrome_cache_lru_eviction():
    cache = SyndromeCache(max_entries=2)
    cache.put(b"a", 1)
    cache.put(b"b", 2)
    assert cache.get(b"a") == (True, 1)  # refresh 'a'
    cache.put(b"c", 3)  # evicts 'b', the least recently used
    assert cache.get(b"b") == (False, 0)
    assert cache.get(b"a") == (True, 1)
    assert cache.get(b"c") == (True, 3)
    assert len(cache) == 2
    assert cache.evictions == 1


def test_engine_cache_persists_across_batches(surface_fixture):
    graph, det = surface_fixture
    dec = _CountingUnionFind(graph)
    engine = BatchDecodingEngine(dec, dedup=True, cache_size=1 << 14)
    first = engine.decode_batch(det[:800])
    calls_after_first = dec.calls
    second = engine.decode_batch(det[:800])  # identical batch: all memo hits
    assert dec.calls == calls_after_first
    assert np.array_equal(first, second)
    assert engine.stats.cache_hits > 0
    assert engine.stats.batches == 2
    assert engine.stats.shots == 1600
    assert 0.0 < engine.stats.dedup_hit_rate < 1.0


def test_engine_cache_hit_miss_counters_at_high_p():
    # p = 5e-3: syndromes are heavy enough that within-batch dedup decays,
    # which is exactly where the cross-batch memo cache has to earn its keep
    noise = NoiseModel(hardware=GOOGLE, p=5e-3, idle_scale=0.0)
    art = memory_experiment(3, 3, noise)
    dem = circuit_to_dem(art.circuit)
    graph = build_matching_graph(dem, basis="Z")
    det, _ = DemSampler(dem).sample(6000, rng=21)
    engine = BatchDecodingEngine(UnionFindDecoder(graph), dedup=True, cache_size=1 << 14)
    for start in range(0, det.shape[0], 1500):
        engine.decode_batch(det[start : start + 1500])
    stats = engine.stats
    assert stats.cache_hits > 0
    assert stats.cache_misses > 0
    assert stats.cache_hits + stats.cache_misses == stats.distinct_syndromes
    assert stats.decode_calls == stats.cache_misses
    assert stats.cache_hit_rate == pytest.approx(
        stats.cache_hits / (stats.cache_hits + stats.cache_misses)
    )
    # dedup alone leaves plenty of distinct rows at this p
    assert stats.distinct_syndromes / stats.shots > 0.1


def test_injected_cache_is_shared_between_engines(surface_fixture):
    graph, det = surface_fixture
    shared = SyndromeCache(1 << 14)
    first = BatchDecodingEngine(UnionFindDecoder(graph), dedup=True, cache=shared)
    first.decode_batch(det[:800])
    second = BatchDecodingEngine(UnionFindDecoder(graph), dedup=True, cache=shared)
    out = second.decode_batch(det[:800])
    assert second.stats.cache_misses == 0  # fully served by the first engine's work
    assert second.stats.cache_hits == second.stats.distinct_syndromes > 0
    assert np.array_equal(out, first.decode_batch(det[:800]))


def test_engine_without_dedup_matches_engine_with_dedup(surface_fixture):
    graph, det = surface_fixture
    det = det[:400]
    fast = BatchDecodingEngine(UnionFindDecoder(graph), dedup=True, cache_size=256)
    slow = BatchDecodingEngine(UnionFindDecoder(graph), dedup=False)
    assert np.array_equal(fast.decode_batch(det), slow.decode_batch(det))
    assert slow.stats.decode_calls == det.shape[0]
    assert fast.stats.decode_calls < slow.stats.decode_calls


def test_decode_batch_empty_and_bad_shapes(surface_fixture):
    graph, _ = surface_fixture
    dec = UnionFindDecoder(graph)
    out = dec.decode_batch(np.zeros((0, graph.num_detectors), dtype=bool))
    assert out.shape == (0, graph.num_observables)
    with pytest.raises(ValueError):
        dec.decode_batch(np.zeros(graph.num_detectors, dtype=bool))
    with pytest.raises(ValueError):  # column-misaligned input must not decode
        dec.decode_batch(np.zeros((4, graph.num_detectors + 1), dtype=bool))


# ---------------------------------------------------------------------------
# sampler regressions: zero shots, fair coins
# ---------------------------------------------------------------------------


def _dem(errors, ndet=3, nobs=1):
    return DetectorErrorModel(
        errors=[DemError(p, d, o) for p, d, o in errors],
        num_detectors=ndet,
        num_observables=nobs,
        detector_coords=[()] * ndet,
        detector_basis=["Z"] * ndet,
    )


def test_sample_zero_shots_returns_empty_arrays():
    sampler = DemSampler(_dem([(0.2, (0,), (0,)), (0.1, (1, 2), ())]))
    det, obs = sampler.sample(0, rng=0)
    assert det.shape == (0, 3) and det.dtype == bool
    assert obs.shape == (0, 1) and obs.dtype == bool
    det, obs, err = sampler.sample(0, rng=0, return_errors=True)
    assert det.shape == (0, 3)
    assert isinstance(err, sp.csr_matrix) and err.shape == (0, 2)
    assert list(sampler.sample_batches(0, rng=0)) == []


def test_sample_negative_shots_rejected():
    sampler = DemSampler(_dem([(0.2, (0,), ())]))
    with pytest.raises(ValueError):
        sampler.sample(-1, rng=0)


def test_sample_zero_batch_size_rejected():
    sampler = DemSampler(_dem([(0.2, (0,), ())]))
    with pytest.raises(ValueError):
        sampler.sample(100, rng=0, batch_size=0)


def test_fair_coin_error_sampled_exactly():
    sampler = DemSampler(_dem([(0.5, (0,), (0,))]))
    assert sampler._rates[0] == 0.0  # not clipped into a huge dart rate
    det, obs = sampler.sample(40000, rng=5)
    assert det[:, 0].mean() == pytest.approx(0.5, abs=0.01)
    assert np.array_equal(det[:, 0], obs[:, 0])


def test_fair_coin_mixes_with_other_mechanisms():
    sampler = DemSampler(
        _dem([(0.5, (0,), ()), (0.3, (1,), ()), (0.7, (2,), ())])
    )
    det, _ = sampler.sample(60000, rng=6)
    assert det[:, 0].mean() == pytest.approx(0.5, abs=0.01)
    assert det[:, 1].mean() == pytest.approx(0.3, abs=0.01)
    assert det[:, 2].mean() == pytest.approx(0.7, abs=0.01)


def test_heavy_error_folding_still_hits_fair_coin_path():
    # p > 1/2 folds to 1-p; exactly 1/2 after folding is impossible, but the
    # pre-fold 0.5 case must not be caught by the heavy branch
    sampler = DemSampler(_dem([(0.5, (0,), ())]))
    assert not sampler._det_offset[0]
    assert sampler._fair.tolist() == [0]


def test_sample_batches_streams_like_sample():
    sampler = DemSampler(_dem([(0.1, (0, 1), (0,)), (0.05, (2,), ())]))
    det_a, obs_a = sampler.sample(5000, rng=7, batch_size=512)
    parts = list(sampler.sample_batches(5000, rng=7, batch_size=512))
    det_b = np.concatenate([p[0] for p in parts])
    obs_b = np.concatenate([p[1] for p in parts])
    assert np.array_equal(det_a, det_b)
    assert np.array_equal(obs_a, obs_b)
    assert all(p[0].shape[0] <= 512 for p in parts)


# ---------------------------------------------------------------------------
# streaming LER pipeline + its guards and caches
# ---------------------------------------------------------------------------


def _config(tau_ns=500.0, policy="passive"):
    return SurgeryLerConfig(
        distance=2, hardware=GOOGLE, policy_name=policy, tau_ns=tau_ns
    )


def test_pad_predictions_pads_and_truncates():
    pred = np.array([[True, False], [False, True]])
    assert _pad_predictions(pred, 2) is pred
    padded = _pad_predictions(pred, 3)
    assert padded.shape == (2, 3)
    assert not padded[:, 2].any()
    assert np.array_equal(padded[:, :2], pred)
    truncated = _pad_predictions(pred, 1)
    assert np.array_equal(truncated, pred[:, :1])


def test_mask_detectors_is_explicit(surface_fixture):
    pipe = prepared_pipeline(_config(), make_policy("passive"))
    det, _ = pipe.sampler.sample(16, rng=0)
    masked = pipe.mask_detectors(det)
    assert masked.shape == (16, pipe.graph.num_detectors)
    with pytest.raises(ValueError):
        pipe.mask_detectors(det[:, :-1])  # wrong width is an error, not a guess
    with pytest.raises(ValueError):
        pipe.mask_detectors(det[0])


def test_streaming_matches_single_batch_decode():
    cfg = _config()
    pol = make_policy("passive")
    whole = run_surgery_ler(cfg, pol, 3000, rng=9, batch_size=3000)
    streamed = run_surgery_ler(cfg, pol, 3000, rng=9, batch_size=3000, dedup=False)
    assert [e.successes for e in whole.estimates] == [
        e.successes for e in streamed.estimates
    ]
    nodedup_nocache = run_surgery_ler(
        cfg, pol, 3000, rng=9, batch_size=3000, cache_size=0
    )
    assert [e.successes for e in whole.estimates] == [
        e.successes for e in nodedup_nocache.estimates
    ]
    assert whole.decode_stats["decode_calls"] < 3000


def test_pipeline_cache_is_bounded_lru(monkeypatch):
    monkeypatch.setattr(ler_module, "PIPELINE_CACHE_SIZE", 2)
    ler_module.clear_pipeline_cache()
    pol = make_policy("passive")
    for tau in (100.0, 200.0, 300.0):
        prepared_pipeline(_config(tau_ns=tau), pol)
    assert len(ler_module._PIPELINE_CACHE) == 2
    keys = list(ler_module._PIPELINE_CACHE)
    assert keys[0][0].tau_ns == 200.0  # oldest surviving entry
    assert keys[1][0].tau_ns == 300.0
    ler_module.clear_pipeline_cache()
    assert len(ler_module._PIPELINE_CACHE) == 0


def test_pipeline_cache_key_is_stable_across_instances():
    ler_module.clear_pipeline_cache()
    cfg = _config(policy="active")
    a = prepared_pipeline(cfg, make_policy("active", placement="before"))
    b = prepared_pipeline(cfg, make_policy("active", placement="before"))
    c = prepared_pipeline(cfg, make_policy("active", placement="after"))
    assert a is b
    assert a is not c


# ---------------------------------------------------------------------------
# sharded parallel decode: worker-count independence
# ---------------------------------------------------------------------------


def test_shard_tasks_partition_is_deterministic():
    tasks = shard_tasks(_config(), "passive", (), 103, 42, num_shards=4)
    again = shard_tasks(_config(), "passive", (), 103, 42, num_shards=4)
    assert [t.shots for t in tasks] == [26, 26, 26, 25]
    assert sum(t.shots for t in tasks) == 103
    for t1, t2 in zip(tasks, again):
        assert t1.seed.spawn_key == t2.seed.spawn_key
        assert t1.seed.entropy == t2.seed.entropy
    # more shards than shots collapses gracefully
    tiny = shard_tasks(_config(), "passive", (), 2, 0, num_shards=8)
    assert [t.shots for t in tiny] == [1, 1]


def test_sharded_decode_bit_identical_across_worker_counts():
    cfg = _config()
    pol = make_policy("passive")
    serial = run_sharded_ler(cfg, pol, 2000, rng=7, num_shards=4, max_workers=1)
    parallel = run_sharded_ler(cfg, pol, 2000, rng=7, num_shards=4, max_workers=4)
    assert [e.successes for e in serial.estimates] == [
        e.successes for e in parallel.estimates
    ]
    assert serial.shots == parallel.shots == 2000
    assert all(e.trials == 2000 for e in serial.estimates)
    assert serial.decode_stats["shards"] == 4


def test_run_surgery_ler_delegates_to_sharded_path():
    cfg = _config()
    pol = make_policy("passive")
    via_kwarg = run_surgery_ler(cfg, pol, 1200, rng=3, decode_workers=2)
    direct = run_sharded_ler(cfg, pol, 1200, rng=3, max_workers=2)
    assert [e.successes for e in via_kwarg.estimates] == [
        e.successes for e in direct.estimates
    ]
    assert via_kwarg.shots == 1200
    # sharded stats expose the same keys as the serial path (plus "shards")
    serial = run_surgery_ler(cfg, pol, 1200, rng=3, decode_workers=1)
    assert set(serial.decode_stats) <= set(via_kwarg.decode_stats)
    assert 0.0 <= via_kwarg.decode_stats["dedup_hit_rate"] <= 1.0


def test_decode_workers_never_changes_results():
    # the shard count is fixed, so scaling the pool cannot change the answer
    cfg = _config()
    pol = make_policy("passive")
    two = run_surgery_ler(cfg, pol, 1300, rng=5, decode_workers=2)
    four = run_surgery_ler(cfg, pol, 1300, rng=5, decode_workers=4)
    assert [e.successes for e in two.estimates] == [e.successes for e in four.estimates]
    assert two.decode_stats["shards"] == four.decode_stats["shards"]


def test_sharded_zero_shots_matches_serial_shape():
    cfg = _config()
    sharded = run_sharded_ler(cfg, make_policy("passive"), 0, rng=1)
    serial = run_surgery_ler(cfg, make_policy("passive"), 0, rng=1)
    assert sharded.shots == serial.shots == 0
    assert len(sharded.estimates) == len(serial.estimates) > 0
    assert all(e.trials == 0 for e in sharded.estimates)
    assert set(serial.decode_stats) == set(sharded.decode_stats)
