"""Randomized cross-validation: frame sampler vs tableau oracle.

Generates random Clifford circuits with deterministic-by-construction
detectors and random single-Pauli injections, then checks the two simulators
agree — exactly (deterministic errors) and statistically (random errors).
"""

import numpy as np
import pytest

from repro.stab import Circuit, FrameSimulator, simulate_circuit

GATES_1Q = ["H", "S", "S_DAG", "SQRT_X", "X", "Y", "Z", "I"]
GATES_2Q = ["CX", "CZ", "SWAP"]


def _random_clifford_circuit(rng, n=4, depth=12):
    """Random Clifford circuit ending in a full Z measurement; detectors are
    pairs of repeated measurements (always deterministic)."""
    c = Circuit()
    c.append("R", list(range(n)))
    for _ in range(depth):
        if rng.random() < 0.5:
            q = int(rng.integers(0, n))
            c.append(str(rng.choice(GATES_1Q)), [q])
        else:
            a, b = rng.choice(n, size=2, replace=False)
            c.append(str(rng.choice(GATES_2Q)), [int(a), int(b)])
    # measure every qubit twice in the same basis: parity is deterministic
    first = c.append("M", list(range(n)))
    second = c.append("M", list(range(n)))
    for q in range(n):
        c.detector([first[q], second[q]])
    return c


@pytest.mark.parametrize("seed", range(8))
def test_random_clifford_detectors_deterministic(seed):
    rng = np.random.default_rng(seed)
    c = _random_clifford_circuit(rng)
    det, _ = FrameSimulator(c).sample(64, rng=seed)
    assert not det.any()
    for s in range(3):
        _, det_t, _ = simulate_circuit(c, seed * 10 + s)
        assert det_t.sum() == 0


@pytest.mark.parametrize("seed", range(6))
def test_random_circuit_with_deterministic_error(seed):
    """Inject one certain Pauli error at a random location: both simulators
    must flip exactly the same detectors."""
    rng = np.random.default_rng(100 + seed)
    c = _random_clifford_circuit(rng)
    # rebuild with an error inserted at a random instruction boundary
    noisy = Circuit()
    insert_at = int(rng.integers(1, len(c.instructions) - 1))
    err_gate = str(rng.choice(["X_ERROR", "Y_ERROR", "Z_ERROR"]))
    err_q = int(rng.integers(0, 4))
    for i, inst in enumerate(c.instructions):
        if i == insert_at:
            noisy.append(err_gate, [err_q], [1.0])
        noisy.append(
            inst.name, inst.targets, inst.args,
            rec=inst.rec, coords=inst.coords, basis=inst.basis,
            obs_index=None if inst.obs_index < 0 else inst.obs_index,
        )
    det_f, _ = FrameSimulator(noisy).sample(16, rng=0)
    assert (det_f == det_f[0]).all(), "deterministic error must give constant syndrome"
    _, det_t, _ = simulate_circuit(noisy, 7)
    assert np.array_equal(det_f[0].astype(np.uint8), det_t)


@pytest.mark.parametrize("seed", range(3))
def test_random_circuit_statistical_agreement(seed):
    rng = np.random.default_rng(200 + seed)
    c = _random_clifford_circuit(rng, n=3, depth=8)
    noisy = Circuit()
    for i, inst in enumerate(c.instructions):
        noisy.append(
            inst.name, inst.targets, inst.args,
            rec=inst.rec, coords=inst.coords, basis=inst.basis,
            obs_index=None if inst.obs_index < 0 else inst.obs_index,
        )
        if inst.name in ("CX", "CZ", "SWAP"):
            noisy.append("DEPOLARIZE2", inst.targets[:2], [0.15])
    det_f, _ = FrameSimulator(noisy).sample(30000, rng=1)
    frame_rates = det_f.mean(axis=0)
    trials = 800
    counts = np.zeros(noisy.num_detectors)
    for s in range(trials):
        _, det_t, _ = simulate_circuit(noisy, 5000 + s)
        counts += det_t
    tableau_rates = counts / trials
    assert np.allclose(frame_rates, tableau_rates, atol=0.05)
