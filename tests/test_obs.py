"""The observability contract (docs/OBSERVABILITY.md).

Three families of guarantees:

* **Mergeable metrics** — :class:`repro.obs.LatencyHistogram` merge is
  associative and worker-count-independent (any partition of the same
  durations pools to the identical histogram), and survives the JSON
  round-trip bit-exactly.
* **Zero-cost when off** — disabled tracing hands back shared no-op
  singletons and never evaluates lazy span attributes.
* **Bit-neutrality** — tracing on vs. off changes nothing in predictions
  or stored records, across the sequential and speculative schedulers at
  1 and 4 workers; worker spans travel back and merge into one timeline.
"""

import json
import random

import pytest

from repro import obs
from repro.experiments.parallel import reset_warm_state
from repro.experiments.sweeps import (
    PolicySpec,
    SweepSpec,
    record_parity_view,
    run_sweep,
)
from repro.noise import GOOGLE
from repro.store import ResultStore


@pytest.fixture(autouse=True)
def _obs_disabled():
    # every test starts and ends with tracing off and env-undecided; tests
    # that want a recorder call obs.configure() themselves
    obs.reset()
    reset_warm_state()
    yield
    obs.reset()
    reset_warm_state()


# ---------------------------------------------------------------------------
# histograms: merge algebra + round-trip
# ---------------------------------------------------------------------------


def _durations(n=500, seed=7):
    rng = random.Random(seed)
    # span the bucket range: sub-bucket ns up through seconds + overflow
    return [rng.randrange(0, 2 * 10**12) for _ in range(n)]


def test_histogram_merge_is_associative():
    durs = _durations()
    parts = [durs[0:100], durs[100:350], durs[350:500]]
    hists = []
    for part in parts:
        h = obs.LatencyHistogram()
        for d in part:
            h.record_ns(d)
        hists.append(h)

    left = obs.LatencyHistogram().merge(hists[0]).merge(hists[1]).merge(hists[2])
    h01 = obs.LatencyHistogram().merge(hists[0]).merge(hists[1])
    right = obs.LatencyHistogram().merge(h01).merge(hists[2])
    assert left.to_dict() == right.to_dict()


def test_histogram_partition_independence():
    """The pooled histogram is identical for any worker count / split."""
    durs = _durations()
    reference = obs.LatencyHistogram()
    for d in durs:
        reference.record_ns(d)

    for k in (1, 2, 4, 8):
        merged = obs.LatencyHistogram()
        for w in range(k):
            part = obs.LatencyHistogram()
            for d in durs[w::k]:
                part.record_ns(d)
            merged.merge(part)
        assert merged.to_dict() == reference.to_dict(), f"k={k}"


def test_histogram_round_trip_and_percentiles():
    h = obs.LatencyHistogram()
    for d in (50, 150, 150, 10**6, 3 * 10**12):  # incl. overflow bucket
        h.record_ns(d)
    data = h.to_dict()
    back = obs.LatencyHistogram.from_dict(data)
    assert back.to_dict() == data
    assert data["count"] == 5 and sum(data["counts"]) == 5
    assert data["min_ns"] == 50 and data["max_ns"] == 3 * 10**12
    # overflow percentile resolves to the exact observed max
    assert h.percentile_ns(100) == 3 * 10**12
    # percentile never exceeds a real observation
    assert h.percentile_ns(50) <= data["max_ns"]
    # json round-trip (what the metrics file does) is exact: ints stay ints
    assert obs.LatencyHistogram.from_dict(json.loads(json.dumps(data))).to_dict() == data


def test_histogram_rejects_foreign_bounds_and_clamps_negatives():
    h = obs.LatencyHistogram()
    h.record_ns(-5)  # clock granularity can yield tiny negatives
    assert h.min_ns == 0 and h.count == 1
    other = obs.LatencyHistogram(bounds=(10, 100))
    with pytest.raises(ValueError):
        h.merge(other)
    with pytest.raises(ValueError):
        obs.LatencyHistogram(bounds=(100, 100))


# ---------------------------------------------------------------------------
# zero-overhead disabled path
# ---------------------------------------------------------------------------


def test_disabled_span_is_shared_noop_and_args_never_evaluated():
    assert not obs.enabled()
    s1 = obs.span("decode.kernel", lambda: pytest.fail("args evaluated while off"))
    s2 = obs.span("ler.sample")
    assert s1 is s2  # one shared singleton, no per-span allocation
    with s1:
        pass
    obs.count("sweep.batches_dispatched")  # all no-ops
    obs.event("sweep.overshoot", lambda: pytest.fail("args evaluated while off"))
    with obs.collect() as spans:
        with obs.span("decode.kernel"):
            pass
    assert spans.events == []
    assert obs.active() is None


def test_lazy_args_evaluated_exactly_once_when_enabled():
    obs.configure()
    calls = []
    with obs.span("decode.kernel", lambda: calls.append(1) or {"rows": 3}):
        pass
    assert calls == [1]
    (ev,) = obs.active().events
    assert ev["name"] == "decode.kernel" and ev["args"] == {"rows": 3}
    assert ev["dur"] >= 0 and isinstance(ev["ts"], int)


def test_env_activation_and_reset(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_TRACE", str(tmp_path / "t.json"))
    obs.reset()
    assert obs.enabled()
    assert obs.active().trace_path == str(tmp_path / "t.json")
    monkeypatch.delenv("REPRO_TRACE")
    assert obs.enabled()  # env is resolved once, not per call
    obs.reset()
    assert not obs.enabled()


def test_stopwatch_runs_without_recorder():
    assert not obs.enabled()
    with obs.stopwatch() as sw:
        sum(range(1000))
    assert sw.ns > 0
    assert sw.seconds == sw.ns / 1e9


# ---------------------------------------------------------------------------
# collect/absorb: the worker handoff protocol
# ---------------------------------------------------------------------------


def test_collect_drains_and_absorb_merges():
    rec = obs.configure()
    with obs.span("sweep.dispatch"):
        pass
    with obs.collect() as spans:
        with obs.span("decode.kernel"):
            pass
        with obs.span("decode.kernel"):
            pass
    # drained: the recorder no longer holds the task's events ...
    assert [ev["name"] for ev in rec.events] == ["sweep.dispatch"]
    assert [ev["name"] for ev in spans.events] == ["decode.kernel"] * 2
    # ... so absorbing them back cannot double-count
    obs.absorb(spans.events)
    assert [ev["name"] for ev in rec.events] == [
        "sweep.dispatch",
        "decode.kernel",
        "decode.kernel",
    ]
    snap = obs.metrics_snapshot(rec)
    assert snap["histograms"]["decode.kernel"]["count"] == 2


def test_absorb_is_dropped_when_disabled():
    obs.disable()
    obs.absorb([{"name": "decode.kernel", "ts": 0, "dur": 1, "pid": 1}])
    assert obs.active() is None


# ---------------------------------------------------------------------------
# exporters: trace + metrics round-trips
# ---------------------------------------------------------------------------


def test_trace_file_round_trip(tmp_path):
    obs.configure(trace_path=tmp_path / "t.json")
    with obs.span("decode.kernel", {"rows": 7}):
        pass
    obs.event("sweep.overshoot")
    obs.count("sweep.batches_dispatched", 3)
    path = obs.write_trace()

    doc = json.loads((tmp_path / "t.json").read_text())
    assert path == str(tmp_path / "t.json")
    assert doc["schema"] == obs.TRACE_SCHEMA
    assert doc["counters"] == {"sweep.batches_dispatched": 3}
    phases = {ev["name"]: ev["ph"] for ev in doc["traceEvents"]}
    assert phases == {"decode.kernel": "X", "sweep.overshoot": "i"}
    assert min(ev["ts"] for ev in doc["traceEvents"]) == 0  # normalized

    events = obs.load_trace(tmp_path / "t.json")
    rows = obs.summarize(events)
    assert [r["name"] for r in rows] == ["decode.kernel", "sweep.overshoot"]
    table = obs.format_summary(rows)
    assert "decode.kernel" in table and "p99_us" in table
    # bare-array form (what chrome devtools sometimes saves) also loads
    (tmp_path / "bare.json").write_text(json.dumps(doc["traceEvents"]))
    assert [e["name"] for e in obs.load_trace(tmp_path / "bare.json")] == [
        e["name"] for e in events
    ]


def test_load_trace_rejects_non_trace_files(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"hello": 1}))
    with pytest.raises(ValueError):
        obs.load_trace(bad)
    bad.write_text(json.dumps({"traceEvents": [{"ph": "X"}]}))
    with pytest.raises(ValueError):
        obs.load_trace(bad)


def test_metrics_file_round_trip(tmp_path):
    rec = obs.configure(metrics_path=tmp_path / "m.json")
    for _ in range(4):
        with obs.span("decode.kernel"):
            pass
    obs.count("sweep.batches_applied")
    obs.write_metrics()

    data = obs.load_metrics(tmp_path / "m.json")
    assert data["schema"] == obs.METRICS_SCHEMA
    hist = data["histograms"]["decode.kernel"]
    assert hist["count"] == 4 and sum(hist["counts"]) == 4
    assert data["counters"] == {"sweep.batches_applied": 1}
    # snapshot equals what an in-process reader computes
    assert data == json.loads(json.dumps(obs.metrics_snapshot(rec)))


def test_write_trace_requires_recorder_and_path(tmp_path):
    with pytest.raises(RuntimeError):
        obs.write_trace()
    obs.configure()  # path-less recorder
    with pytest.raises(ValueError):
        obs.write_trace()
    obs.write_trace(tmp_path / "explicit.json")  # explicit path still works
    assert (tmp_path / "explicit.json").exists()


# ---------------------------------------------------------------------------
# the pipeline contract: tracing on/off is bit-identical
# ---------------------------------------------------------------------------


def _spec():
    return SweepSpec(
        name="obs-parity",
        distances=(2,),
        taus_ns=(500.0, 1000.0),
        policies=(PolicySpec("passive"), PolicySpec("active")),
        hardware=GOOGLE,
        seed=11,
        batch_shots=400,
        min_shots=400,
        max_shots=1200,
        target_rse=0.12,
        p=5e-3,
    )


def _records(report):
    return {o.key: o.record for o in report.outcomes}


def test_tracing_bit_identity_across_schedulers(tmp_path):
    """{sequential, --speculate 4} x {1, 4 workers}, traced vs. untraced."""
    spec = _spec()
    reference = _records(run_sweep(spec, ResultStore(tmp_path / "ref")))
    assert not obs.enabled()  # the reference run really was untraced

    for speculate in (0, 4):
        for workers in (1, 4):
            reset_warm_state()
            obs.configure()
            try:
                report = run_sweep(
                    spec,
                    ResultStore(tmp_path / f"s{speculate}w{workers}"),
                    workers=workers,
                    speculate=speculate,
                )
                events = list(obs.active().events)
            finally:
                obs.reset()
            got = _records(report)
            assert got.keys() == reference.keys()
            for key, ref in reference.items():
                assert record_parity_view(got[key]) == record_parity_view(ref), (
                    f"speculate={speculate} workers={workers}"
                )
            assert events, f"speculate={speculate} workers={workers}: no spans"


def test_pipeline_spans_merge_across_worker_processes(tmp_path):
    """Worker spans travel on LerResult.obs_spans into one merged timeline."""
    spec = _spec()
    obs.configure()
    try:
        run_sweep(spec, ResultStore(tmp_path / "s"), workers=2, speculate=2)
        events = list(obs.active().events)
        counters = dict(obs.active().counters)
    finally:
        obs.reset()

    kinds = {ev["name"] for ev in events}
    # decode-side spans recorded inside pool workers ...
    assert {"ler.sample", "decode.kernel", "store.commit"} <= kinds
    # ... and coordinator-side scheduler spans, in the same buffer
    assert {"sweep.dispatch", "sweep.idle"} <= kinds
    assert "sweep.apply" in kinds or "sweep.replay" in kinds
    # the timeline really spans multiple OS processes
    assert len({ev["pid"] for ev in events}) >= 2
    assert counters["sweep.batches_dispatched"] > 0
    # the scheduler-triage shape the speculation benchmark records
    phases = obs.phase_totals(events)
    assert phases["sweep.dispatch"]["count"] == counters["sweep.batches_dispatched"]


def test_result_obs_spans_never_reach_stored_records(tmp_path):
    """The span side-channel is excluded from batch_stats -> store records."""
    from repro.experiments.ler import BATCH_STAT_KEYS

    assert "obs_spans" not in BATCH_STAT_KEYS
    spec = _spec()
    obs.configure()
    try:
        report = run_sweep(spec, ResultStore(tmp_path / "s"), workers=2, speculate=2)
    finally:
        obs.reset()
    for record in _records(report).values():
        assert "obs_spans" not in json.dumps(record)
