"""Tableau-simulator tests: known stabilizer states and measurement laws."""

import numpy as np
import pytest

from repro.stab import Circuit, TableauSimulator, simulate_circuit
from repro.stab.pauli import PauliString


def _expect(sim, label):
    p = PauliString.from_label(label)
    return sim.expectation_of_pauli(p.xs, p.zs)


def test_initial_state_is_all_zero():
    sim = TableauSimulator(3, rng=0)
    for q in range(3):
        assert sim.measure(q) == 0


def test_x_flips_measurement():
    sim = TableauSimulator(1, rng=0)
    sim.x_gate(0)
    assert sim.measure(0) == 1


def test_hadamard_gives_random_outcomes():
    outcomes = set()
    for seed in range(20):
        sim = TableauSimulator(1, rng=seed)
        sim.h(0)
        outcomes.add(sim.measure(0))
    assert outcomes == {0, 1}


def test_measurement_collapse_is_sticky():
    for seed in range(10):
        sim = TableauSimulator(1, rng=seed)
        sim.h(0)
        first = sim.measure(0)
        assert sim.measure(0) == first


def test_bell_pair_correlations():
    for seed in range(15):
        sim = TableauSimulator(2, rng=seed)
        sim.h(0)
        sim.cx(0, 1)
        assert sim.measure(0) == sim.measure(1)


def test_bell_pair_expectations():
    sim = TableauSimulator(2, rng=0)
    sim.h(0)
    sim.cx(0, 1)
    assert _expect(sim, "XX") == 1
    assert _expect(sim, "ZZ") == 1
    assert _expect(sim, "YY") == -1
    assert _expect(sim, "ZI") == 0  # indeterminate


def test_s_gate_turns_x_into_y():
    sim = TableauSimulator(1, rng=0)
    sim.h(0)  # |+>, stabilized by X
    assert _expect(sim, "X") == 1
    sim.s(0)  # S|+> stabilized by Y
    assert _expect(sim, "Y") == 1
    sim.s_dag(0)
    assert _expect(sim, "X") == 1


def test_cz_equivalent_to_h_cx_h():
    a = TableauSimulator(2, rng=0)
    a.h(0)
    a.h(1)
    a.cz(0, 1)
    assert _expect(a, "XZ") == 1
    assert _expect(a, "ZX") == 1


def test_swap_moves_state():
    sim = TableauSimulator(2, rng=0)
    sim.x_gate(0)
    sim.swap(0, 1)
    assert sim.measure(0) == 0
    assert sim.measure(1) == 1


def test_reset_returns_to_zero():
    for seed in range(5):
        sim = TableauSimulator(1, rng=seed)
        sim.h(0)
        sim.reset(0)
        assert sim.measure(0) == 0


def test_measure_x_on_plus_state():
    sim = TableauSimulator(1, rng=0)
    sim.reset_x(0)
    assert sim.measure_x(0) == 0


def test_ghz_stabilizers():
    n = 4
    sim = TableauSimulator(n, rng=3)
    sim.h(0)
    for q in range(n - 1):
        sim.cx(q, q + 1)
    assert _expect(sim, "X" * n) == 1
    assert _expect(sim, "ZZII") == 1
    assert _expect(sim, "IZZI") == 1
    assert _expect(sim, "Z" + "I" * (n - 1)) == 0


def test_simulate_circuit_detector_and_observable():
    c = Circuit()
    c.append("R", [0, 1])
    c.append("H", [0])
    c.append("CX", [0, 1])
    m = c.append("M", [0, 1])
    c.detector([m[0], m[1]])
    c.observable_include(0, [m[0], m[1]])
    for seed in range(10):
        _, det, obs = simulate_circuit(c, seed)
        assert det[0] == 0
        assert obs[0] == 0


def test_simulate_circuit_with_deterministic_noise():
    c = Circuit()
    c.append("R", [0])
    c.append("X_ERROR", [0], [1.0])
    m = c.append("M", [0])
    c.detector(m)
    _, det, _ = simulate_circuit(c, 0)
    assert det[0] == 1


def test_noise_rate_statistics():
    c = Circuit()
    c.append("R", [0])
    c.append("X_ERROR", [0], [0.3])
    m = c.append("M", [0])
    c.detector(m)
    hits = sum(simulate_circuit(c, seed)[1][0] for seed in range(400))
    assert 0.2 < hits / 400 < 0.4
