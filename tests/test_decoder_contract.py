"""Cross-decoder contract suite: metamorphic and property-based fuzzing.

The trick that makes the matching contract *directly* checkable: random
matching graphs are built with **one observable bit per error**, so every
edge owns a distinct bit and a prediction bitmask IS the chosen correction's
edge set (mod 2).  That turns "the decoder returned a valid correction" into
linear algebra — the selected edges' incidence sum must reproduce the input
syndrome exactly (defect parity preservation; the boundary absorbs the
rest).  On top of that, every decoder x backend pair must:

* return ``(shots, num_observables)`` bool predictions,
* be bit-identical across backends and across dedup on/off,
* be invariant under row duplication and permutation (metamorphic), and
* for the predecoded path, equal the manual predecode -> decode -> XOR
  composition, with offload statistics matching the scalar reference.

Everything is seeded: a failure reproduces from the printed parameters.
"""

import numpy as np
import pytest

from conftest import build_dem_graph, build_dense_syndromes
from repro.decoders import (
    BatchDecodingEngine,
    LookupTableDecoder,
    MWPMDecoder,
    PredecodedDecoder,
    Predecoder,
    UnionFindDecoder,
)

GRAPH_SEEDS = [0, 1, 2, 3, 4]

DECODERS = ["unionfind", "mwpm", "predecoded", "predecoded-mwpm", "hierarchical"]


def _build(name, graph):
    if name == "unionfind":
        return UnionFindDecoder(graph)
    if name == "mwpm":
        return MWPMDecoder(graph)
    if name == "predecoded":
        return PredecodedDecoder(graph, UnionFindDecoder(graph))
    if name == "predecoded-mwpm":
        return PredecodedDecoder(graph, MWPMDecoder(graph))
    from repro.decoders import HierarchicalDecoder

    return HierarchicalDecoder(graph, lut_size_bytes=512, lut_max_errors=1)


def random_matching_graph(seed: int):
    """A random connected matching graph with one observable bit per error.

    A chain backbone guarantees connectivity, random chords add cycles and
    parallel edges, and at least one boundary edge guarantees odd defect
    sets stay decodable.  Probabilities are drawn per edge, so edge weights
    (and hence shortest paths and growth schedules) vary per seed.
    """
    rng = np.random.default_rng(seed)
    ndet = int(rng.integers(5, 12))
    errors = []

    def add(dets):
        errors.append((float(rng.uniform(0.01, 0.3)), dets, (len(errors),)))

    for i in range(ndet - 1):  # connected backbone
        add((i, i + 1))
    for _ in range(int(rng.integers(0, ndet))):  # chords / parallel edges
        u, v = (int(x) for x in rng.choice(ndet, size=2, replace=False))
        add((u, v))
    n_boundary = int(rng.integers(1, max(2, ndet // 2)))
    for node in rng.choice(ndet, size=n_boundary, replace=False):
        add((int(node),))
    return build_dem_graph(errors, ndet, nobs=len(errors))


def _edge_incidence(graph) -> np.ndarray:
    """(num_observables, num_detectors) GF(2) incidence of the edge bits."""
    M = np.zeros((graph.num_observables, graph.num_detectors), dtype=np.int8)
    for e in range(graph.num_edges):
        obs = int(graph.edge_obs[e])
        bit = obs.bit_length() - 1
        assert obs == 1 << bit, "contract graphs carry one obs bit per edge"
        for node in (int(graph.edge_u[e]), int(graph.edge_v[e])):
            if node < graph.num_detectors:
                M[bit, node] ^= 1
    return M


def assert_valid_correction(graph, det: np.ndarray, pred: np.ndarray) -> None:
    """The predicted edge set must reproduce the syndrome it corrects."""
    flips = (pred.astype(np.int8) @ _edge_incidence(graph)) % 2
    assert np.array_equal(flips.astype(bool), det)


# ---------------------------------------------------------------------------
# the fundamental contract: shape, validity, backend identity
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", GRAPH_SEEDS)
@pytest.mark.parametrize("decoder_name", DECODERS)
def test_correction_preserves_defect_parity(decoder_name, seed, backend_names):
    graph = random_matching_graph(seed)
    density = [0.05, 0.15, 0.4][seed % 3]
    det = build_dense_syndromes(graph, 150, density, seed=1000 + seed)
    reference = None
    for backend in backend_names:
        decoder = _build(decoder_name, graph)
        out = decoder.decode_batch(det, backend=backend)
        assert out.shape == (det.shape[0], graph.num_observables)
        assert out.dtype == np.bool_
        assert_valid_correction(graph, det, out)
        if reference is None:
            reference = out
        else:
            assert np.array_equal(out, reference), (decoder_name, seed, backend)


@pytest.mark.parametrize("seed", GRAPH_SEEDS[:3])
@pytest.mark.parametrize("decoder_name", DECODERS)
def test_dedup_vs_no_dedup_bit_identity(decoder_name, seed, backend_names):
    graph = random_matching_graph(seed)
    det = build_dense_syndromes(graph, 120, 0.2, seed=2000 + seed)
    scalar = _build(decoder_name, graph).decode_batch(det, dedup=False)
    for backend in backend_names:
        dedup = _build(decoder_name, graph).decode_batch(
            det, dedup=True, backend=backend
        )
        assert np.array_equal(dedup, scalar), (decoder_name, seed, backend)


@pytest.mark.parametrize("seed", GRAPH_SEEDS[:3])
def test_decode_batch_invariant_under_duplication_and_permutation(
    seed, backend_names
):
    graph = random_matching_graph(seed)
    det = build_dense_syndromes(graph, 80, 0.25, seed=3000 + seed)
    rng = np.random.default_rng(seed)
    doubled = np.concatenate([det, det[::-1]])
    perm = rng.permutation(det.shape[0])
    for backend in backend_names:
        base = _build("unionfind", graph).decode_batch(det, backend=backend)
        twice = _build("unionfind", graph).decode_batch(doubled, backend=backend)
        assert np.array_equal(twice[: det.shape[0]], base)
        assert np.array_equal(twice[det.shape[0] :], base[::-1])
        shuffled = _build("unionfind", graph).decode_batch(
            det[perm], backend=backend
        )
        assert np.array_equal(shuffled, base[perm])


# ---------------------------------------------------------------------------
# predecode -> decode composition
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", GRAPH_SEEDS)
@pytest.mark.parametrize("slow_name", ["unionfind", "mwpm"])
def test_predecode_then_decode_equals_scalar_composition(
    seed, slow_name, backend_names
):
    graph = random_matching_graph(seed)
    det = build_dense_syndromes(graph, 100, 0.15, seed=4000 + seed)
    pre = Predecoder(graph)
    slow = _build(slow_name, graph)
    expected = np.zeros(det.shape[0], dtype=np.uint64)
    for i in range(det.shape[0]):
        residual, mask, _ = pre.apply(det[i])
        if residual.any():
            mask ^= slow.decode(residual)
        expected[i] = mask
    nobs = graph.num_observables
    bits = np.left_shift(np.uint64(1), np.arange(nobs, dtype=np.uint64))
    expected_rows = (expected[:, None] & bits[None, :]) != 0
    ref_stats = None
    for backend in backend_names:
        wrapped = _build(
            "predecoded" if slow_name == "unionfind" else "predecoded-mwpm", graph
        )
        out = wrapped.decode_batch(det, backend=backend)
        assert np.array_equal(out, expected_rows), (seed, slow_name, backend)
        if ref_stats is None:
            ref_stats = vars(wrapped.stats).copy()
        else:
            assert vars(wrapped.stats) == ref_stats, (seed, slow_name, backend)


# ---------------------------------------------------------------------------
# LUT decoder: contract holds on the syndromes it covers
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", GRAPH_SEEDS[:3])
def test_lut_decoder_contract_on_enumerable_syndromes(seed, backend_names):
    graph = random_matching_graph(seed)
    lut = LookupTableDecoder(graph, max_errors=2)
    rng = np.random.default_rng(5000 + seed)
    det = np.zeros((60, graph.num_detectors), dtype=bool)
    for i in range(det.shape[0]):  # syndromes of <= 2 random edges: all hits
        for e in rng.choice(graph.num_edges, size=rng.integers(0, 3), replace=False):
            for node in (int(graph.edge_u[e]), int(graph.edge_v[e])):
                if node < graph.num_detectors:
                    det[i, node] ^= True
    reference = None
    for backend in backend_names:
        out = LookupTableDecoder(graph, max_errors=2).decode_batch(
            det, backend=backend
        )
        assert_valid_correction(graph, det, out)
        if reference is None:
            reference = out
        else:
            assert np.array_equal(out, reference)
    assert np.array_equal(lut.decode_batch(det, dedup=False), reference)


# ---------------------------------------------------------------------------
# engine-level contract: stats agree with predictions across backends
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("decoder_name", DECODERS)
def test_engine_counters_identical_across_backends(decoder_name, backend_names):
    graph = random_matching_graph(7)
    det = build_dense_syndromes(graph, 200, 0.1, seed=6000)
    reference = None
    for backend in backend_names:
        engine = BatchDecodingEngine(_build(decoder_name, graph), backend=backend)
        engine.decode_batch(det)
        counters = vars(engine.stats).copy()
        counters.pop("decode_seconds")
        if reference is None:
            reference = counters
        else:
            assert counters == reference, (decoder_name, backend)


# ---------------------------------------------------------------------------
# nested wrappers: inner statistics must match the scalar pass too
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", GRAPH_SEEDS[:2])
def test_nested_predecoder_inner_stats_match_scalar(seed, backend_names):
    """A predecoder wrapping a predecoder: the scalar pass reaches the inner
    decoder with multiplicity 1 per residual row, and the composed kernels
    must weight the inner offload statistics identically."""
    graph = random_matching_graph(seed)
    det = build_dense_syndromes(graph, 100, 0.2, seed=7000 + seed)
    det = np.concatenate([det, det[:40]])  # duplicated rows: dedup counts > 1
    reference = ref_outer = ref_inner = None
    for backend in backend_names:
        inner = PredecodedDecoder(graph, UnionFindDecoder(graph))
        outer = PredecodedDecoder(graph, inner)
        out = outer.decode_batch(det, backend=backend)
        assert_valid_correction(graph, det, out)
        if reference is None:
            reference = out
            ref_outer = vars(outer.stats).copy()
            ref_inner = vars(inner.stats).copy()
        else:
            assert np.array_equal(out, reference), (seed, backend)
            assert vars(outer.stats) == ref_outer, (seed, backend)
            assert vars(inner.stats) == ref_inner, (seed, backend)
