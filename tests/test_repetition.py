"""Repetition-code experiment tests (the Fig. 1c fixture)."""

import numpy as np
import pytest

from repro.codes.repetition import repetition_experiment
from repro.decoders import LookupTableDecoder, UnionFindDecoder, build_matching_graph
from repro.stab import DemSampler, circuit_to_dem, simulate_circuit
from repro.noise import NoiseModel
from repro.experiments.figures import SHERBROOKE


@pytest.fixture
def sherbrooke_noise():
    return NoiseModel(hardware=SHERBROOKE, p=1e-2)


def test_structure(sherbrooke_noise):
    art = repetition_experiment(3, 2, sherbrooke_noise)
    assert art.circuit.num_qubits == 5
    assert art.circuit.num_detectors == 2 * 3  # 2 checks x (2 rounds + final)
    assert art.circuit.num_observables == 1


def test_noiseless_determinism(sherbrooke_noise):
    art = repetition_experiment(3, 2, sherbrooke_noise, idle_before_last_round_ns=500.0)
    clean = art.circuit.without_noise()
    for seed in range(4):
        _, det, obs = simulate_circuit(clean, seed)
        assert det.sum() == 0 and obs.sum() == 0


def test_invalid_args(sherbrooke_noise):
    with pytest.raises(ValueError):
        repetition_experiment(1, 2, sherbrooke_noise)
    with pytest.raises(ValueError):
        repetition_experiment(3, 0, sherbrooke_noise)


def test_idle_monotonically_increases_ler(sherbrooke_noise):
    lers = []
    for idle in (0.0, 20_000.0, 60_000.0):
        art = repetition_experiment(3, 2, sherbrooke_noise, idle_before_last_round_ns=idle)
        dem = circuit_to_dem(art.circuit)
        graph = build_matching_graph(dem, basis="Z")
        det, obs = DemSampler(dem).sample(20000, rng=1)
        pred = UnionFindDecoder(graph).decode_batch(det)
        lers.append(float((pred[:, :1] ^ obs).mean()))
    assert lers[0] < lers[1] < lers[2]


def test_lut_decoder_covers_repetition_code(sherbrooke_noise):
    """The paper used a LUT decoder for Fig. 1c; weight-3 enumeration covers
    the 3-qubit, 2-round code's whole syndrome space."""
    art = repetition_experiment(3, 2, sherbrooke_noise, idle_before_last_round_ns=300.0)
    dem = circuit_to_dem(art.circuit)
    graph = build_matching_graph(dem, basis="Z")
    lut = LookupTableDecoder(graph, max_errors=4)
    det, obs = DemSampler(dem).sample(3000, rng=2)
    pred = lut.decode_batch(det)  # raises KeyError on any uncovered syndrome
    ler = float((pred[:, :1] ^ obs).mean())
    assert 0.0 <= ler < 0.5


def test_wider_repetition_codes(sherbrooke_noise):
    art = repetition_experiment(5, 3, sherbrooke_noise)
    assert art.circuit.num_qubits == 9
    dem = circuit_to_dem(art.circuit)
    graph = build_matching_graph(dem, basis="Z")
    assert graph.decomposition_fallbacks == 0
