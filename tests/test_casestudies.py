"""Case-study tests: cultivation slack (Fig. 4a) and qLDPC slack (Fig. 4b)."""

import numpy as np
import pytest

from repro.casestudies import (
    CultivationModel,
    cultivation_slack_distribution,
    qldpc_surface_slack,
    slack_sawtooth,
)
from repro.codes.cycle_time import COLOR_CODE, QLDPC_BB, SURFACE_CODE
from repro.noise import GOOGLE, IBM


def test_cultivation_success_probability_decreases_with_p():
    model = CultivationModel()
    assert model.success_probability(5e-4) > model.success_probability(1e-3)
    with pytest.raises(ValueError):
        model.success_probability(1.5)


def test_cultivation_slack_bounded_by_cycle():
    dist = cultivation_slack_distribution(IBM, 1e-3, shots=20_000, rng=0)
    assert dist.samples_ns.shape == (20_000,)
    assert (dist.samples_ns >= 0).all()
    assert dist.worst_ns < IBM.cycle_time_ns
    assert 0 < dist.median_ns < IBM.cycle_time_ns


def test_cultivation_slack_scale_matches_paper_band():
    """The paper reads ~500 ns average / ~1000 ns worst case off Fig. 4a."""
    dist = cultivation_slack_distribution(IBM, 1e-3, shots=50_000, rng=1)
    assert 200 < dist.mean_ns < 1500
    assert dist.percentile(95) > 500


def test_cultivation_deterministic_with_seed():
    a = cultivation_slack_distribution(GOOGLE, 1e-3, shots=1000, rng=7)
    b = cultivation_slack_distribution(GOOGLE, 1e-3, shots=1000, rng=7)
    assert np.array_equal(a.samples_ns, b.samples_ns)


def test_sawtooth_properties():
    out = slack_sawtooth(10, 1000.0, 1210.0)
    assert out.shape == (11,)
    assert out[0] == 0.0
    assert out[1] == pytest.approx(210.0)
    assert (out < 1000.0).all()
    with pytest.raises(ValueError):
        slack_sawtooth(5, 1200.0, 1000.0)
    with pytest.raises(ValueError):
        slack_sawtooth(-1, 1000.0, 1200.0)


def test_qldpc_slack_drift_per_round():
    for hw in (IBM, GOOGLE):
        slack = qldpc_surface_slack(50, hw)
        t_s = SURFACE_CODE.cycle_time_ns(hw)
        t_q = QLDPC_BB.cycle_time_ns(hw)
        drift = t_q - t_s
        assert drift == pytest.approx(3 * hw.time_2q_ns)
        assert slack[1] == pytest.approx(drift % t_s)
        # sawtooth wraps at the surface cycle time
        assert slack.max() < t_s


def test_code_cycle_models_ordering():
    for hw in (IBM, GOOGLE):
        assert (
            SURFACE_CODE.cycle_time_ns(hw)
            < QLDPC_BB.cycle_time_ns(hw)
            < COLOR_CODE.cycle_time_ns(hw)
        )


# --- speculative leakage-reduction drift (Sec. 3.2 "other sources") -----------


def test_lrc_slack_bounded_and_seeded():
    from repro.casestudies import LrcModel, leakage_slack_distribution

    dist = leakage_slack_distribution(IBM, rounds=50, shots=20_000, rng=3)
    assert (dist.samples_ns >= 0).all()
    assert dist.worst_ns < IBM.cycle_time_ns
    again = leakage_slack_distribution(IBM, rounds=50, shots=20_000, rng=3)
    assert np.array_equal(dist.samples_ns, again.samples_ns)


def test_lrc_slack_grows_with_rounds_then_wraps():
    from repro.casestudies import leakage_slack_distribution

    short = leakage_slack_distribution(IBM, rounds=5, shots=30_000, rng=1)
    longer = leakage_slack_distribution(IBM, rounds=80, shots=30_000, rng=1)
    assert longer.mean_ns > short.mean_ns


def test_lrc_model_validation():
    from repro.casestudies import LrcModel, leakage_slack_distribution

    with pytest.raises(ValueError):
        LrcModel(p_lrc=1.5)
    with pytest.raises(ValueError):
        leakage_slack_distribution(IBM, rounds=0)


def test_lrc_zero_probability_never_drifts():
    from repro.casestudies import LrcModel, leakage_slack_distribution

    dist = leakage_slack_distribution(
        IBM, rounds=40, shots=5_000, model=LrcModel(p_lrc=0.0), rng=2
    )
    assert dist.worst_ns == 0.0
