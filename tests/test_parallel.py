"""Parallel sweep-runner tests."""

import pytest

from repro.experiments.parallel import SweepTask, merge_results, run_sweep_parallel
from repro.experiments.ler import SurgeryLerConfig
from repro.experiments.stats import RateEstimate
from repro.noise import GOOGLE


def _task(seed, shots=1500, policy="passive"):
    cfg = SurgeryLerConfig(
        distance=2, hardware=GOOGLE, policy_name=policy, tau_ns=500.0
    )
    return SweepTask(
        config=cfg, policy_name=policy, policy_kwargs=(), shots=shots, seed=seed
    )


def test_serial_execution():
    results = run_sweep_parallel([_task(1), _task(2)], max_workers=1)
    assert len(results) == 2
    assert all(len(r.estimates) == 3 for r in results)


def test_parallel_matches_serial():
    tasks = [_task(7), _task(8)]
    serial = run_sweep_parallel(tasks, max_workers=1)
    parallel = run_sweep_parallel(tasks, max_workers=2)
    for a, b in zip(serial, parallel):
        assert [e.successes for e in a.estimates] == [e.successes for e in b.estimates]


def test_merge_results_pools_batches():
    batches = run_sweep_parallel([_task(1), _task(2), _task(3)], max_workers=1)
    merged = merge_results(batches)
    assert merged[0].trials == 4500
    assert merged[0].successes == sum(b.estimates[0].successes for b in batches)


def test_merge_rejects_mixed_configs():
    a = run_sweep_parallel([_task(1)], max_workers=1)[0]
    b = run_sweep_parallel([_task(2, policy="active")], max_workers=1)[0]
    with pytest.raises(ValueError):
        merge_results([a, b])


def test_empty_task_list():
    assert run_sweep_parallel([]) == []
    assert merge_results([]) == []
