"""Perf-trajectory contract (`repro.obs.history`, docs/CI.md).

The history is an append-only JSONL of benchmark series keyed by a
manifest of the perf-relevant environment.  These tests pin:

* direction inference from metric names (throughput up, latency down);
* grouping — entries only compare within (source, manifest_key);
* the comparison policy: median-of-window baseline, relative threshold,
  and — the acceptance criterion — a fixture history with an injected 2x
  throughput regression is *reported* under the default CLI invocation
  (exit 0) and *fails* only under ``--strict`` (exit 1);
* torn-tail crash tolerance, same policy as the run ledger.
"""

import json

import pytest

from repro import cli
from repro.obs import history


@pytest.fixture(autouse=True)
def _cwd_tmp(tmp_path, monkeypatch):
    # DEFAULT_HISTORY is repo-relative; keep every test off the real repo
    monkeypatch.chdir(tmp_path)


def _results(tmp_path, name="results.json", **series):
    path = tmp_path / name
    payload = dict(series) if series else {"dedup_shots_per_sec": 100000.0}
    path.write_text(json.dumps(payload))
    return path


def _record_n(tmp_path, hist, n, **series):
    src = _results(tmp_path, **series)
    for _ in range(n):
        history.record_history_entry(src, history_path=hist)
    return src


# ---------------------------------------------------------------------------
# direction inference + series extraction
# ---------------------------------------------------------------------------


def test_series_direction_inference():
    assert history.series_direction("dedup_shots_per_sec") == "up"
    assert history.series_direction("rate_hz") == "up"
    assert history.series_direction("speedup_vs_seed_loop") == "up"
    assert history.series_direction("cold_sweep_seconds") == "down"
    assert history.series_direction("span.decode.kernel.p99_ns") == "down"
    assert history.series_direction("apply_ms") == "down"
    # throughput suffix wins over the bare `_s` latency suffix
    assert history.series_direction("rows_per_s") == "up"
    assert history.series_direction("shots") is None
    assert history.series_direction("cpu_count") is None


def test_series_direction_speedup_family():
    # the speculation benchmark's headline metrics, exactly as recorded
    assert history.series_direction("speedup") == "up"
    assert history.series_direction("speedup_vs_serial") == "up"
    # fragment match: `speedup` anywhere in the name
    assert history.series_direction("decode_speedup_cold") == "up"


def test_series_direction_ratio_family():
    assert history.series_direction("dedup_ratio") == "up"
    assert history.series_direction("cache_hit_ratio") == "up"
    # a ratio never falls through to the bare-`_s` latency suffix
    assert history.series_direction("shots_ratio") == "up"


def test_series_direction_x_family():
    assert history.series_direction("warm_vs_cold_x") == "up"
    assert history.series_direction("throughput_x") == "up"
    # `_x` is a suffix match only — names merely containing x stay latency
    assert history.series_direction("exec_ms") == "down"
    assert history.series_direction("max_shots") is None


def test_results_series_flattens_and_skips_meta():
    series = history.results_series({
        "config": {"d": 3, "deep": {"rate_per_sec": 5.0}},
        "meta": {"cpu_count": 64},          # provenance, not a measurement
        "parity_ok": True,                   # bools are not series
        "label": "fast",                     # strings are not series
        "nan_free": 2.5,
    })
    assert series == {
        "config.d": 3.0,
        "config.deep.rate_per_sec": 5.0,
        "nan_free": 2.5,
    }


def test_manifest_key_separates_machines():
    a = {"python": "3.12.0", "platform": "linux", "cpu_count": 4, "store_salt": "s"}
    b = dict(a, cpu_count=128)
    assert history.manifest_key(a) == history.manifest_key(dict(a))
    assert history.manifest_key(a) != history.manifest_key(b)


# ---------------------------------------------------------------------------
# record + load round-trip
# ---------------------------------------------------------------------------


def test_record_and_load_round_trip(tmp_path):
    hist = tmp_path / "h.jsonl"
    src = _results(tmp_path, dedup_shots_per_sec=100000.0)
    entry = history.record_history_entry(src, history_path=hist, note="seed")
    assert entry["schema"] == history.HISTORY_SCHEMA
    assert entry["source"] == "results.json"
    assert entry["note"] == "seed"
    assert entry["series"] == {"dedup_shots_per_sec": 100000.0}
    assert entry["manifest_key"] == history.manifest_key(entry["meta"])

    (loaded,) = history.load_history(hist)
    assert loaded == json.loads(json.dumps(entry, default=str))


def test_record_reuses_embedded_meta_block(tmp_path):
    """`benchmarks/_helpers.record` stamps meta; the history must honor it."""
    hist = tmp_path / "h.jsonl"
    meta = {"python": "3.1.4", "platform": "retro", "cpu_count": 1,
            "store_salt": "old", "recorded_at": 12.0}
    src = tmp_path / "stamped.json"
    src.write_text(json.dumps({"rate_per_sec": 2.0, "meta": meta}))
    entry = history.record_history_entry(src, history_path=hist)
    assert entry["meta"] == meta
    assert entry["manifest_key"] == history.manifest_key(meta)
    assert "meta" not in entry["series"]


def test_record_rejects_list_shaped_results(tmp_path):
    src = tmp_path / "rows.json"
    src.write_text(json.dumps([{"ler": 1e-4}]))
    with pytest.raises(ValueError):
        history.record_history_entry(src, history_path=tmp_path / "h.jsonl")


def test_record_folds_metrics_span_percentiles(tmp_path):
    from repro import obs

    metrics = tmp_path / "m.json"
    obs.configure(metrics_path=metrics)
    try:
        with obs.span("decode.kernel"):
            pass
        obs.write_metrics()
    finally:
        obs.reset()
    hist = tmp_path / "h.jsonl"
    src = _results(tmp_path)
    entry = history.record_history_entry(src, metrics_path=metrics, history_path=hist)
    span_keys = [k for k in entry["series"] if k.startswith("span.decode.kernel.")]
    assert sorted(span_keys) == [
        "span.decode.kernel.p50_ns",
        "span.decode.kernel.p95_ns",
        "span.decode.kernel.p99_ns",
    ]
    assert history.series_direction(span_keys[0]) == "down"


def test_load_history_tolerates_torn_tail(tmp_path):
    hist = tmp_path / "h.jsonl"
    _record_n(tmp_path, hist, 2)
    with open(hist, "a") as f:
        f.write('{"schema": "repro.bench.hist')  # crash mid-append
    assert len(history.load_history(hist)) == 2
    # and compare still works on what survived
    report = history.compare_history(hist)
    assert report["entries"] == 2


# ---------------------------------------------------------------------------
# compare: baselines, grouping, thresholds
# ---------------------------------------------------------------------------


def test_compare_flags_throughput_drop_and_latency_rise(tmp_path):
    hist = tmp_path / "h.jsonl"
    src = _results(tmp_path, dedup_shots_per_sec=100000.0, apply_seconds=1.0)
    for _ in range(3):
        history.record_history_entry(src, history_path=hist)
    src.write_text(json.dumps({"dedup_shots_per_sec": 50000.0, "apply_seconds": 2.0}))
    history.record_history_entry(src, history_path=hist)

    report = history.compare_history(hist)
    flagged = {(f["metric"], f["direction"]) for f in report["regressions"]}
    assert flagged == {("dedup_shots_per_sec", "up"), ("apply_seconds", "down")}
    assert report["improvements"] == []
    for f in report["regressions"]:
        if f["metric"] == "dedup_shots_per_sec":
            assert f["baseline"] == 100000.0 and f["latest"] == 50000.0
            assert f["change_pct"] == pytest.approx(-50.0)


def test_compare_flags_improvements_separately(tmp_path):
    hist = tmp_path / "h.jsonl"
    src = _results(tmp_path, rate_per_sec=100.0)
    for _ in range(2):
        history.record_history_entry(src, history_path=hist)
    src.write_text(json.dumps({"rate_per_sec": 200.0}))
    history.record_history_entry(src, history_path=hist)
    report = history.compare_history(hist)
    assert report["regressions"] == []
    assert [f["metric"] for f in report["improvements"]] == ["rate_per_sec"]


def test_compare_within_threshold_is_quiet(tmp_path):
    hist = tmp_path / "h.jsonl"
    src = _results(tmp_path, rate_per_sec=100.0)
    for _ in range(2):
        history.record_history_entry(src, history_path=hist)
    src.write_text(json.dumps({"rate_per_sec": 90.0}))  # -10% < 25% threshold
    history.record_history_entry(src, history_path=hist)
    report = history.compare_history(hist)
    assert report["regressions"] == [] and report["improvements"] == []
    # ... but a tighter threshold flags it
    tight = history.compare_history(hist, threshold=0.05)
    assert [f["metric"] for f in tight["regressions"]] == ["rate_per_sec"]


def test_compare_never_crosses_manifest_groups(tmp_path):
    """A slow laptop entry must not regress the fast workstation's history."""
    hist = tmp_path / "h.jsonl"
    fast = {"schema": history.HISTORY_SCHEMA, "source": "r.json",
            "meta": {"python": "3.12.0", "cpu_count": 128},
            "manifest_key": "fast0000", "series": {"rate_per_sec": 1000.0}}
    slow = dict(fast, manifest_key="slow0000", series={"rate_per_sec": 10.0})
    with open(hist, "w") as f:
        for entry in (fast, fast, slow):
            f.write(json.dumps(entry) + "\n")
    report = history.compare_history(hist)
    assert report["regressions"] == []
    assert report["compared"] == 1          # only the fast group has >= 2 entries
    assert len(report["skipped"]) == 1      # the lone slow entry waits for data


def test_compare_baseline_is_median_of_window(tmp_path):
    hist = tmp_path / "h.jsonl"
    values = [100.0, 100.0, 400.0, 100.0, 100.0]  # median 100 despite the spike
    src = tmp_path / "results.json"
    for v in values:
        src.write_text(json.dumps({"rate_per_sec": v}))
        history.record_history_entry(src, history_path=hist)
    src.write_text(json.dumps({"rate_per_sec": 50.0}))
    history.record_history_entry(src, history_path=hist)
    report = history.compare_history(hist, window=5)
    (f,) = report["regressions"]
    assert f["baseline"] == 100.0  # one outlier round cannot move the baseline


# ---------------------------------------------------------------------------
# the CLI acceptance criterion: report-only by default, gate under --strict
# ---------------------------------------------------------------------------


def _regressed_history(tmp_path):
    hist = tmp_path / "h.jsonl"
    _record_n(tmp_path, hist, 3, dedup_shots_per_sec=100000.0)
    src = tmp_path / "results.json"
    src.write_text(json.dumps({"dedup_shots_per_sec": 50000.0}))  # injected 2x drop
    history.record_history_entry(src, history_path=hist)
    return hist


def test_cli_compare_reports_regression_without_failing(tmp_path, capsys):
    hist = _regressed_history(tmp_path)
    assert cli.main(["bench", "compare", "--history", str(hist)]) == 0
    out = capsys.readouterr().out
    assert "REGRESSION" in out and "dedup_shots_per_sec" in out
    assert "-50.0%" in out


def test_cli_compare_strict_exits_nonzero_on_regression(tmp_path, capsys):
    hist = _regressed_history(tmp_path)
    assert cli.main(["bench", "compare", "--history", str(hist), "--strict"]) == 1
    assert "REGRESSION" in capsys.readouterr().out


def test_cli_compare_strict_passes_clean_history(tmp_path, capsys):
    hist = tmp_path / "h.jsonl"
    _record_n(tmp_path, hist, 3)
    assert cli.main(["bench", "compare", "--history", str(hist), "--strict"]) == 0
    assert "no regressions" in capsys.readouterr().out


def test_cli_record_then_compare_round_trip(tmp_path, capsys):
    hist = tmp_path / "h.jsonl"
    src = _results(tmp_path)
    assert cli.main(["bench", "record", str(src), "--history", str(hist),
                     "--note", "baseline"]) == 0
    out = capsys.readouterr().out
    assert "recorded results.json" in out
    assert cli.main(["bench", "compare", "--history", str(hist),
                     "--format", "json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["entries"] == 1 and report["compared"] == 0


def test_cli_record_missing_file_is_clean_error(tmp_path, capsys):
    rc = cli.main(["bench", "record", str(tmp_path / "nope.json"),
                   "--history", str(tmp_path / "h.jsonl")])
    assert rc == 2
    assert "cannot record" in capsys.readouterr().err
