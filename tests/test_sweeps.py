"""Sweep orchestrator tests: resume determinism, adaptive stopping, warm
workers, store read-through for figure sweeps, and cross-point cache stats."""

import dataclasses
import json

import numpy as np
import pytest

from repro.core import make_policy
from repro.experiments import figures
from repro.experiments import ler as ler_module
from repro.experiments.ler import SurgeryLerConfig, pipeline_payload
from repro.experiments.parallel import reset_warm_state, run_sharded_ler
from repro.experiments.sweeps import (
    PolicySpec,
    SweepSpec,
    ensure_point,
    point_record_estimates,
    run_sweep,
)
from repro.noise import GOOGLE
from repro.store import ResultStore, set_default_store


@pytest.fixture(autouse=True)
def _fresh_warm_state():
    reset_warm_state()
    yield
    reset_warm_state()
    set_default_store(None)


def _spec(**kwargs):
    base = dict(
        name="test",
        distances=(2,),
        taus_ns=(500.0,),
        policies=(PolicySpec("passive"),),
        hardware=GOOGLE,
        seed=11,
        batch_shots=500,
        min_shots=500,
        max_shots=2000,
        target_rse=None,
    )
    base.update(kwargs)
    return SweepSpec(**base)


# ---------------------------------------------------------------------------
# spec expansion and (de)serialization
# ---------------------------------------------------------------------------


def test_spec_round_trips_through_json(tmp_path):
    spec = _spec(
        policies=(PolicySpec("passive"), PolicySpec("hybrid", (("eps_ns", 100.0),))),
        target_rse=0.1,
    )
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(spec.to_dict()))
    loaded = SweepSpec.from_json(path)
    assert loaded == spec


def test_spec_accepts_hardware_presets_and_policy_dicts():
    spec = SweepSpec.from_dict(
        {
            "name": "x",
            "hardware": "google",
            "distances": [2, 3],
            "taus_ns": [500],
            "policies": ["passive", {"name": "hybrid", "eps_ns": 100.0}],
        }
    )
    assert spec.hardware == GOOGLE
    assert spec.policies[1] == PolicySpec("hybrid", (("eps_ns", 100.0),))
    points = spec.points()
    assert len(points) == 4
    assert points[0].config.distance == 2
    assert points[1].policy_name == "hybrid"
    assert points[1].config.policy_args == (("eps_ns", 100.0),)


def test_point_keys_distinct_across_grid():
    spec = _spec(distances=(2, 3), policies=(PolicySpec("passive"), PolicySpec("active")))
    keys = {p.key(seed=spec.seed, batch_shots=spec.batch_shots) for p in spec.points()}
    assert len(keys) == 4


# ---------------------------------------------------------------------------
# resume determinism (the acceptance criterion)
# ---------------------------------------------------------------------------


def test_interrupted_then_resumed_is_bit_identical(tmp_path):
    spec = _spec(policies=(PolicySpec("passive"), PolicySpec("active")))
    clean = run_sweep(spec, ResultStore(tmp_path / "clean"))
    assert clean.shots_decoded == spec.max_shots * 2

    store = ResultStore(tmp_path / "interrupted")
    partial = run_sweep(spec, store, batch_limit=3)
    assert partial.interrupted
    assert partial.shots_decoded == 3 * spec.batch_shots
    assert store.summary()["partial"] >= 1

    resumed = run_sweep(spec, store, resume=True)
    assert not resumed.interrupted
    # resumed only decodes what the interruption skipped
    assert resumed.shots_decoded == clean.shots_decoded - partial.shots_decoded
    clean_records = {o.key: o.record for o in clean.outcomes}
    for outcome in resumed.outcomes:
        ref = clean_records[outcome.key]
        assert outcome.record["failures"] == ref["failures"]
        assert outcome.record["shots"] == ref["shots"]
        assert outcome.record["batches"] == ref["batches"]
        assert outcome.record["stop_reason"] == ref["stop_reason"]


def test_restart_without_resume_matches_too(tmp_path):
    spec = _spec()
    store = ResultStore(tmp_path)
    run_sweep(spec, store, batch_limit=1)
    redone = run_sweep(spec, store, resume=False)  # discards the partial record
    clean = run_sweep(spec, ResultStore(tmp_path / "b"))
    assert redone.outcomes[0].record["failures"] == clean.outcomes[0].record["failures"]


def test_completed_sweep_rerun_decodes_zero_shots(tmp_path):
    spec = _spec()
    store = ResultStore(tmp_path)
    first = run_sweep(spec, store)
    assert first.shots_decoded == spec.max_shots
    again = run_sweep(spec, store)
    assert again.shots_decoded == 0
    assert again.batches_decoded == 0
    assert again.points_from_store == len(spec.points())
    assert again.outcomes[0].record["failures"] == first.outcomes[0].record["failures"]


def test_sweep_worker_count_does_not_change_results(tmp_path):
    spec = _spec(target_rse=0.15, max_shots=3000)
    serial = run_sweep(spec, ResultStore(tmp_path / "serial"), workers=1)
    reset_warm_state()
    pooled = run_sweep(spec, ResultStore(tmp_path / "pooled"), workers=3)
    a, b = serial.outcomes[0].record, pooled.outcomes[0].record
    assert a["failures"] == b["failures"]
    assert a["shots"] == b["shots"]
    assert a["stop_reason"] == b["stop_reason"]
    # warm handoff: pool workers never re-analyzed the circuit
    assert pooled.analyses_workers == 0
    assert pooled.analyses_parent <= 1


# ---------------------------------------------------------------------------
# adaptive shot allocation
# ---------------------------------------------------------------------------


def test_adaptive_stops_early_when_interval_is_tight(tmp_path):
    loose = _spec(target_rse=0.5, max_shots=10_000)
    report = run_sweep(loose, ResultStore(tmp_path))
    rec = report.outcomes[0].record
    assert rec["stop_reason"] == "target_rse"
    assert rec["shots"] < loose.max_shots
    # the stopping rule matches the stored numbers
    k = int(np.argmax(rec["failures"]))
    est = point_record_estimates(rec)[k]
    lo, hi = est.interval
    assert (hi - lo) / 2.0 <= 0.5 * est.rate


def test_adaptive_runs_to_cap_when_target_unreachable(tmp_path):
    tight = _spec(target_rse=1e-4, max_shots=2000)
    report = run_sweep(tight, ResultStore(tmp_path))
    rec = report.outcomes[0].record
    assert rec["stop_reason"] == "max_shots"
    assert rec["shots"] == 2000


def test_tightening_target_extends_stored_point(tmp_path):
    store = ResultStore(tmp_path)
    run_sweep(_spec(target_rse=0.5, max_shots=10_000), store)
    first_shots = next(store.records())["shots"]
    report = run_sweep(_spec(target_rse=0.2, max_shots=10_000), store)
    rec = report.outcomes[0].record
    assert rec["shots"] > first_shots  # continued, not restarted
    assert report.shots_decoded == rec["shots"] - first_shots


def test_not_applicable_policy_is_recorded_and_skipped(tmp_path):
    # extra_rounds with max_rounds=0 cannot absorb any slack: not applicable
    spec = _spec(
        policies=(PolicySpec("extra_rounds", (("max_rounds", 0),)),),
        taus_ns=(1000.0,),
    )
    store = ResultStore(tmp_path)
    report = run_sweep(spec, store)
    rec = report.outcomes[0].record
    assert rec["status"] == "not_applicable"
    assert rec["shots"] == 0
    again = run_sweep(spec, store)
    assert again.shots_decoded == 0
    assert again.outcomes[0].record["status"] == "not_applicable"


# ---------------------------------------------------------------------------
# ensure_point + figure-function read-through
# ---------------------------------------------------------------------------


def _config(policy="passive", tau=500.0):
    return SurgeryLerConfig(
        distance=2, hardware=GOOGLE, policy_name=policy, tau_ns=tau
    )


def test_ensure_point_fixed_shot_mode(tmp_path):
    store = ResultStore(tmp_path)
    rec = ensure_point(store, _config(), "passive", (), seed=5, batch_shots=1500)
    assert rec["shots"] == 1500
    assert rec["converged"] and rec["stop_reason"] == "max_shots"
    again = ensure_point(store, _config(), "passive", (), seed=5, batch_shots=1500)
    assert again["failures"] == rec["failures"]
    assert len(store) == 1


def test_sweep_policies_reads_through_store(tmp_path):
    store = ResultStore(tmp_path)
    kwargs = dict(
        policies=("passive",),
        distances=(2,),
        taus_ns=(500.0,),
        shots=1000,
        hardware=GOOGLE,
        rng=13,
    )
    first = figures.sweep_policies(store=store, **kwargs)
    assert len(store) == 1
    analyses = ler_module.PIPELINE_ANALYSES
    second = figures.sweep_policies(store=store, **kwargs)
    # second pass decoded nothing new: same numbers, no new analysis beyond
    # the cached pipeline, and the single stored record was reused
    assert [e.successes for e in second[0].estimates] == [
        e.successes for e in first[0].estimates
    ]
    assert len(store) == 1
    assert ler_module.PIPELINE_ANALYSES == analyses
    assert first[0].plan  # plan summary survives the store round-trip


def test_sweep_policies_without_store_unchanged(tmp_path):
    # a Generator rng (or no active store) keeps the legacy sequential path
    a = figures.sweep_policies(
        ("passive",), (2,), (500.0,), 800, hardware=GOOGLE, rng=np.random.default_rng(3)
    )
    set_default_store(ResultStore(tmp_path))
    b = figures.sweep_policies(
        ("passive",), (2,), (500.0,), 800, hardware=GOOGLE, rng=np.random.default_rng(3)
    )
    set_default_store(None)
    assert [e.successes for e in a[0].estimates] == [e.successes for e in b[0].estimates]


# ---------------------------------------------------------------------------
# warm shard workers (pre-analyzed pipeline handoff)
# ---------------------------------------------------------------------------


def test_sharded_ler_accepts_payload_and_matches(tmp_path):
    cfg = _config()
    pol = make_policy("passive")
    plain = run_sharded_ler(cfg, pol, 2000, rng=7, num_shards=4, max_workers=2)
    reset_warm_state()
    payload = pipeline_payload(cfg, pol)
    warm = run_sharded_ler(
        cfg, pol, 2000, rng=7, num_shards=4, max_workers=2, payload=payload
    )
    assert [e.successes for e in warm.estimates] == [
        e.successes for e in plain.estimates
    ]
    assert warm.decode_stats["pipeline_analyses"] == 0
    assert warm.decode_stats["shards"] == 4


def test_payload_pipeline_matches_analyzed_pipeline():
    cfg = _config()
    pol = make_policy("passive")
    payload = pipeline_payload(cfg, pol)
    rebuilt = ler_module._Pipeline.from_payload(payload)
    direct = ler_module.prepared_pipeline(cfg, pol)
    assert rebuilt.plan_summary() == direct.plan_summary()
    assert rebuilt.graph.num_detectors == direct.graph.num_detectors
    det, _ = direct.sampler.sample(64, rng=0)
    masked = direct.mask_detectors(det)
    a = rebuilt.decoder("unionfind").decode_batch(masked)
    b = direct.decoder("unionfind").decode_batch(masked)
    assert np.array_equal(a, b)


# ---------------------------------------------------------------------------
# cross-point syndrome-cache persistence with hit/miss statistics
# ---------------------------------------------------------------------------


def test_family_cache_persists_across_sweep_batches(tmp_path):
    # p = 5e-3: dedup within one batch decays, the cross-batch memo matters
    spec = _spec(p=5e-3, batch_shots=500, max_shots=2000)
    report = run_sweep(spec, ResultStore(tmp_path))
    stats = report.outcomes[0].record["decode_stats"]
    assert stats["cache_hits"] > 0  # later batches hit earlier batches' work
    assert stats["cache_misses"] > 0
    assert stats["cache_hits"] + stats["cache_misses"] == stats["distinct_syndromes"]
    assert stats["decode_calls"] == stats["cache_misses"]
    assert 0.0 < stats["cache_hit_rate"] < 1.0


def test_family_caches_are_isolated_per_decoder(tmp_path):
    # same configuration decoded with two decoders in one process: the
    # per-family caches must not leak one decoder's masks into the other
    cfg = SurgeryLerConfig(
        distance=2, hardware=GOOGLE, policy_name="passive", tau_ns=500.0, p=5e-3
    )
    ensure_point(ResultStore(tmp_path / "uf"), cfg, "passive", (), seed=9,
                 batch_shots=1000, decoder="unionfind")
    tainted = ensure_point(ResultStore(tmp_path / "mwpm"), cfg, "passive", (),
                           seed=9, batch_shots=1000, decoder="mwpm")
    reset_warm_state()  # a fresh process cannot see the unionfind cache
    clean = ensure_point(ResultStore(tmp_path / "mwpm2"), cfg, "passive", (),
                         seed=9, batch_shots=1000, decoder="mwpm")
    assert tainted["failures"] == clean["failures"]


def test_family_cache_survives_rounds_in_pooled_mode(tmp_path):
    # the run-wide pool keeps worker caches alive across convergence rounds,
    # so pooled sweeps see cross-batch hits too (not just the serial path)
    spec = _spec(p=5e-3, batch_shots=500, max_shots=3000)
    report = run_sweep(spec, ResultStore(tmp_path), workers=2)
    stats = report.outcomes[0].record["decode_stats"]
    assert stats["cache_hits"] > 0
    assert report.analyses_workers == 0


# ---------------------------------------------------------------------------
# adaptive batch sizing
# ---------------------------------------------------------------------------


def test_adaptive_batching_grows_batches_up_to_cap(tmp_path):
    spec = _spec(
        p=5e-3,  # failures arrive quickly, so the RSE trend stabilizes early
        batch_shots=500,
        min_shots=500,
        max_shots=20_000,
        adaptive_batching=True,
        max_batch_shots=2000,
    )
    report = run_sweep(spec, ResultStore(tmp_path))
    record = report.outcomes[0].record
    assert record["shots"] >= spec.max_shots
    assert record["batch_shots_next"] > spec.batch_shots
    assert record["batch_shots_next"] <= spec.resolved_max_batch_shots()
    # grown batches decode the same shots in fewer batches
    assert record["batches"] < record["shots"] // spec.batch_shots
    assert record["batch_shots"] == spec.batch_shots  # key component untouched


def test_adaptive_batching_resume_is_bit_identical(tmp_path):
    spec = _spec(
        p=5e-3,
        batch_shots=500,
        max_shots=12_000,
        adaptive_batching=True,
        max_batch_shots=4000,
    )
    clean = run_sweep(spec, ResultStore(tmp_path / "clean"))
    store = ResultStore(tmp_path / "interrupted")
    partial = run_sweep(spec, store, batch_limit=2)
    assert partial.interrupted
    resumed = run_sweep(spec, store, resume=True)
    a, b = clean.outcomes[0].record, resumed.outcomes[0].record
    assert a["failures"] == b["failures"]
    assert a["shots"] == b["shots"]
    assert a["batches"] == b["batches"]
    assert a["batch_shots_next"] == b["batch_shots_next"]


def test_adaptive_batching_worker_count_independent(tmp_path):
    spec = _spec(
        p=5e-3,
        batch_shots=500,
        max_shots=8000,
        adaptive_batching=True,
        max_batch_shots=2000,
    )
    serial = run_sweep(spec, ResultStore(tmp_path / "serial"), workers=1)
    reset_warm_state()
    pooled = run_sweep(spec, ResultStore(tmp_path / "pooled"), workers=3)
    a, b = serial.outcomes[0].record, pooled.outcomes[0].record
    assert a["failures"] == b["failures"]
    assert a["shots"] == b["shots"]
    assert a["batches"] == b["batches"]


def test_adaptive_batching_off_keeps_fixed_sizes(tmp_path):
    spec = _spec(batch_shots=500, max_shots=2000)
    report = run_sweep(spec, ResultStore(tmp_path))
    record = report.outcomes[0].record
    assert record["batch_shots_next"] == spec.batch_shots
    assert record["batches"] == record["shots"] // spec.batch_shots


def test_max_batch_shots_below_batch_shots_rejected():
    with pytest.raises(ValueError):
        _spec(adaptive_batching=True, max_batch_shots=100, batch_shots=500)


# ---------------------------------------------------------------------------
# export and gc
# ---------------------------------------------------------------------------


def test_export_records_round_trips_a_live_sweep(tmp_path):
    from repro.experiments.sweeps import export_records

    spec = _spec(policies=(PolicySpec("passive"), PolicySpec("active")))
    store = ResultStore(tmp_path)
    report = run_sweep(spec, store)
    rows = export_records(spec, store)
    assert len(rows) == len(spec.points())
    by_key = {o.key: o for o in report.outcomes}
    for row in rows:
        outcome = by_key[row["key"]]
        assert row["status"] == "ok"
        assert row["shots"] == outcome.record["shots"]
        assert row["failures"] == outcome.record["failures"]
        assert row["ler"] == [e.rate for e in outcome.estimates]
        assert row["converged"] is True
        lo, hi = row["wilson"][0]
        assert 0.0 <= lo <= hi <= 1.0
    # the export is pure JSON (benchmark-harness consumable) and round-trips
    assert json.loads(json.dumps(rows)) == rows


def test_export_records_marks_missing_points(tmp_path):
    from repro.experiments.sweeps import export_records

    spec = _spec(policies=(PolicySpec("passive"), PolicySpec("active")))
    store = ResultStore(tmp_path)
    run_sweep(spec, store, batch_limit=spec.max_shots // spec.batch_shots)
    rows = export_records(spec, store)
    statuses = sorted(r["status"] for r in rows)
    assert statuses == ["missing", "ok"]


def test_store_gc_prunes_stale_records_and_empty_dirs(tmp_path):
    spec = _spec()
    store = ResultStore(tmp_path)
    run_sweep(spec, store)
    key = store.keys()[0]
    fresh = dict(store.get(key))

    # an old record under another prefix-shard: give it a stale stamp
    old_key = ("0" if not key.startswith("0") else "1") + key[1:]
    store.put(old_key, dict(fresh, updated_at=1.0))

    preview = store.gc(older_than_seconds=30 * 86400, dry_run=True)
    assert preview["pruned_keys"] == [old_key]
    assert old_key in store  # dry run touched nothing
    # the dry run already predicts the directory the prune would empty
    assert old_key[:2] in preview["dirs_removed"]
    assert (tmp_path / "points" / old_key[:2]).exists()

    result = store.gc(older_than_seconds=30 * 86400)
    assert result["pruned"] == 1
    assert old_key not in store
    assert key in store  # the fresh record survives
    assert old_key[:2] in result["dirs_removed"]
    assert not (tmp_path / "points" / old_key[:2]).exists()


def test_store_gc_rejects_negative_horizon(tmp_path):
    with pytest.raises(ValueError):
        ResultStore(tmp_path).gc(older_than_seconds=-1)


# ---------------------------------------------------------------------------
# backend threading
# ---------------------------------------------------------------------------


def test_sweep_backend_is_bit_identical_and_reaches_workers(tmp_path):
    base = _spec(p=5e-3, max_shots=1500)
    python_run = run_sweep(
        dataclasses.replace(base, backend="python"), ResultStore(tmp_path / "py")
    )
    reset_warm_state()
    numpy_run = run_sweep(
        dataclasses.replace(base, backend="numpy"),
        ResultStore(tmp_path / "np"),
        workers=2,
    )
    a, b = python_run.outcomes[0].record, numpy_run.outcomes[0].record
    assert a["key"] == b["key"]  # backend is not part of the point key
    assert a["failures"] == b["failures"]
    assert a["shots"] == b["shots"]


def test_payload_carries_backend_to_shards(tmp_path):
    cfg = SurgeryLerConfig(
        distance=2, hardware=GOOGLE, policy_name="passive", tau_ns=500.0
    )
    payload = pipeline_payload(cfg, make_policy("passive"), backend="python")
    assert payload.backend == "python"
    res = run_sharded_ler(
        cfg, make_policy("passive"), 1000, rng=3, num_shards=4,
        max_workers=2, payload=payload,
    )
    ref = run_sharded_ler(
        cfg, make_policy("passive"), 1000, rng=3, num_shards=4, max_workers=1
    )
    assert [e.successes for e in res.estimates] == [e.successes for e in ref.estimates]


def test_sweep_under_missing_backend_produces_identical_records(
    tmp_path, monkeypatch
):
    """Backend degradation must not leak into stored results.

    With the numpy backend monkeypatched away, naming ``numba`` resolves
    all the way down the fallback chain to ``python`` — and the sweep's
    stored records must be key-identical and content-identical to a
    reference sweep pinned to ``python``.
    """
    from repro.decoders.kernels import NumpyBackend

    base = _spec(p=5e-3, max_shots=1500)
    reference = run_sweep(
        dataclasses.replace(base, backend="python"), ResultStore(tmp_path / "ref")
    )
    reset_warm_state()
    monkeypatch.setattr(NumpyBackend, "available", lambda self: False)
    degraded = run_sweep(
        dataclasses.replace(base, backend="numba"), ResultStore(tmp_path / "deg")
    )
    for a, b in zip(reference.outcomes, degraded.outcomes):
        assert a.key == b.key  # backend never reaches the point key
        assert a.record["failures"] == b.record["failures"]
        assert a.record["shots"] == b.record["shots"]
        assert a.record["batches"] == b.record["batches"]


def test_sweep_spec_rejects_unknown_decoder():
    with pytest.raises(ValueError, match="unknown decoder"):
        _spec(decoder="no-such-decoder")


def test_sweep_runs_predecoded_decoder_through_the_store(tmp_path):
    """The wrapped decoder names round-trip through specs, workers, store."""
    spec = _spec(decoder="predecoded", p=5e-3, max_shots=1000)
    first = run_sweep(spec, ResultStore(tmp_path / "s"))
    record = first.outcomes[0].record
    assert record["config"]["decoder"] == "predecoded"
    assert record["shots"] == 1000
    # a re-run serves entirely from the store, decoding nothing
    again = run_sweep(spec, ResultStore(tmp_path / "s"))
    assert again.shots_decoded == 0
    assert again.outcomes[0].record["failures"] == record["failures"]


def test_hierarchical_lut_budget_is_part_of_the_point_key(monkeypatch):
    """REPRO_DECODE_LUT_BYTES changes predictions, so it must change keys —
    a resumed sweep under a different budget re-decodes instead of merging
    batches from an effectively different decoder."""
    spec = _spec(decoder="hierarchical")
    pt = spec.points()[0]
    key_a = pt.key(seed=spec.seed, batch_shots=spec.batch_shots)
    monkeypatch.setitem(ler_module.DECODE_DEFAULTS, "lut_bytes", 1024)
    key_b = pt.key(seed=spec.seed, batch_shots=spec.batch_shots)
    assert key_a != key_b
    # non-parameterized decoders keep their historical keys
    uf = _spec(decoder="unionfind").points()[0]
    assert ler_module.decoder_store_identity("unionfind") == "unionfind"
    assert uf.key(seed=spec.seed, batch_shots=spec.batch_shots) == uf.key(
        seed=spec.seed, batch_shots=spec.batch_shots
    )


def test_pipeline_decoder_cache_follows_lut_budget(monkeypatch):
    """The pipeline's decoder cache keys by store identity: changing the
    LUT budget rebuilds the decoder instead of serving the stale one."""
    cfg = SurgeryLerConfig(
        distance=2, hardware=GOOGLE, policy_name="passive", tau_ns=500.0
    )
    pipe = ler_module.prepared_pipeline(cfg, make_policy("passive"))
    monkeypatch.setitem(ler_module.DECODE_DEFAULTS, "lut_bytes", 4096)
    big = pipe.decoder("hierarchical")
    assert pipe.decoder("hierarchical") is big  # stable while the knob is
    monkeypatch.setitem(ler_module.DECODE_DEFAULTS, "lut_bytes", 64)
    small = pipe.decoder("hierarchical")
    assert small is not big
    assert small.lut.size_bytes() <= 64 < big.lut.size_bytes()
