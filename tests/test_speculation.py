"""Speculative scheduler parity: the concurrent scheduler must be
bit-identical to the sequential one for any worker count and speculation
depth — estimates, per-point shot counts and stored record contents — and
interrupted speculative runs must resume bit-identically (replaying the
commit-ahead log instead of re-decoding)."""

import dataclasses

import pytest

from repro.experiments.parallel import reset_warm_state
from repro.experiments.sweeps import (
    PolicySpec,
    SweepSpec,
    point_record_estimates,
    record_parity_view,
    run_sweep,
)
from repro.noise import GOOGLE
from repro.store import ResultStore


@pytest.fixture(autouse=True)
def _fresh_warm_state():
    reset_warm_state()
    yield
    reset_warm_state()


def _spec(**kwargs):
    base = dict(
        name="speculation",
        distances=(2,),
        taus_ns=(500.0, 1000.0),
        policies=(PolicySpec("passive"), PolicySpec("active")),
        hardware=GOOGLE,
        seed=11,
        batch_shots=400,
        min_shots=400,
        max_shots=4000,
        target_rse=0.12,
        p=5e-3,
    )
    base.update(kwargs)
    return SweepSpec(**base)


# the library's own parity view: failures, shots, batches, convergence
# state, adaptive size schedule, config echo and plan summary all stay;
# only decode_stats (timings, cache counters) and updated_at are dropped
_scrub = record_parity_view


def _records(report):
    return {o.key: o.record for o in report.outcomes}


# ---------------------------------------------------------------------------
# the acceptance criterion: {sequential, depth 1, depth 4} x {inline, pool}
# (workers 0 and 1 run the zero-IPC inline executor, workers 4 a real pool)
# ---------------------------------------------------------------------------


def test_speculative_parity_matrix(tmp_path):
    spec = _spec()
    reference = run_sweep(spec, ResultStore(tmp_path / "ref"))
    ref_records = _records(reference)
    assert len(ref_records) == len(spec.points())
    assert any(r["batches"] > 1 for r in ref_records.values())  # rule actually adapts

    for speculate in (1, 4):
        for workers in (0, 1, 4):
            reset_warm_state()
            store = ResultStore(tmp_path / f"s{speculate}w{workers}")
            report = run_sweep(spec, store, workers=workers, speculate=speculate)
            assert report.speculate == speculate
            got = _records(report)
            assert got.keys() == ref_records.keys()
            for key, ref in ref_records.items():
                rec = got[key]
                # estimates and per-point shot counts, bit for bit
                assert rec["failures"] == ref["failures"], (speculate, workers)
                assert rec["shots"] == ref["shots"], (speculate, workers)
                assert [
                    (e.successes, e.trials) for e in point_record_estimates(rec)
                ] == [(e.successes, e.trials) for e in point_record_estimates(ref)]
                # full record contents, minus execution-dependent stats
                assert _scrub(rec) == _scrub(ref), (speculate, workers)
                # what the scheduler wrote is what the report carries
                assert _scrub(store.get(key)) == _scrub(ref)


def test_outcomes_emitted_in_sweep_order(tmp_path):
    spec = _spec(max_shots=800, target_rse=None)
    sequential = run_sweep(spec, ResultStore(tmp_path / "a"))
    reset_warm_state()
    concurrent = run_sweep(
        spec, ResultStore(tmp_path / "b"), workers=4, speculate=2
    )
    assert [o.key for o in concurrent.outcomes] == [o.key for o in sequential.outcomes]


# ---------------------------------------------------------------------------
# interruption and resume (commit-ahead log replay)
# ---------------------------------------------------------------------------


def test_interrupted_speculative_run_resumes_bit_identically(tmp_path):
    spec = _spec()
    clean = _records(run_sweep(spec, ResultStore(tmp_path / "clean")))

    for resume_kwargs in (
        dict(workers=1, speculate=0),  # resume on the sequential scheduler
        dict(workers=2, speculate=3),  # resume on the concurrent scheduler
    ):
        reset_warm_state()
        store = ResultStore(tmp_path / f"int-{resume_kwargs['speculate']}")
        partial = run_sweep(spec, store, workers=2, speculate=3, batch_limit=4)
        assert partial.interrupted
        reset_warm_state()
        resumed = run_sweep(spec, store, **resume_kwargs)
        assert not resumed.interrupted
        got = _records(resumed)
        assert got.keys() == clean.keys()
        for key, ref in clean.items():
            assert _scrub(got[key]) == _scrub(ref), resume_kwargs


def test_overshoot_is_committed_then_replayed_by_tightened_resume(tmp_path):
    # loose target: every point converges after one batch, so depth-4
    # speculation decodes batches the stopping rule excludes — they must
    # land in the commit-ahead log, not in the estimates
    loose = _spec(target_rse=0.3, max_shots=8000)
    tight = dataclasses.replace(loose, target_rse=0.12)
    clean_tight = _records(run_sweep(tight, ResultStore(tmp_path / "ct")))

    reset_warm_state()
    store = ResultStore(tmp_path / "s")
    first = run_sweep(loose, store, workers=2, speculate=4)
    assert first.batches_overshoot > 0
    overshoot = sum(len(store.batch_indices(k)) for k in store.keys())
    assert overshoot > 0  # committed ahead, excluded from estimates

    # tightening the target extends every point; the overshoot batches are
    # replayed from the log instead of decoded again, bit-identically
    second = run_sweep(tight, store)
    assert second.batches_replayed > 0
    got = _records(second)
    for key, ref in clean_tight.items():
        assert _scrub(got[key]) == _scrub(ref)


def test_restart_discards_the_commit_ahead_log(tmp_path):
    """--restart means recompute: stale batch results must not replay."""
    spec = _spec()
    store = ResultStore(tmp_path)
    partial = run_sweep(spec, store, workers=2, speculate=3, batch_limit=4)
    assert partial.interrupted
    assert any(store.batch_indices(k) for k in store.keys())  # log populated
    reset_warm_state()
    redone = run_sweep(spec, store, resume=False)
    assert redone.batches_replayed == 0  # recomputed, not replayed
    clean = _records(run_sweep(spec, ResultStore(tmp_path / "clean")))
    for key, ref in clean.items():
        assert _scrub(_records(redone)[key]) == _scrub(ref)


def test_replayed_batches_do_not_count_as_decoded(tmp_path):
    loose = _spec(target_rse=0.3, max_shots=8000)
    tight = dataclasses.replace(loose, target_rse=0.12)
    clean = run_sweep(tight, ResultStore(tmp_path / "c"))
    reset_warm_state()
    store = ResultStore(tmp_path / "s")
    first = run_sweep(loose, store, workers=2, speculate=4)
    reset_warm_state()
    second = run_sweep(tight, store)
    replayed_shots = (
        clean.shots_decoded - first.shots_decoded - second.shots_decoded
    )
    assert replayed_shots > 0  # the log saved real decoding work
    assert second.batches_replayed * loose.batch_shots == replayed_shots


# ---------------------------------------------------------------------------
# adaptive batch sizing under speculation
# ---------------------------------------------------------------------------


def test_resume_survives_a_corrupt_commit_ahead_record(tmp_path):
    """A truncated batch-log write must be re-decoded, not crash resume."""
    spec = _spec()
    clean = _records(run_sweep(spec, ResultStore(tmp_path / "clean")))
    reset_warm_state()
    store = ResultStore(tmp_path / "s")
    partial = run_sweep(spec, store, workers=2, speculate=3, batch_limit=4)
    assert partial.interrupted
    corruptions = [
        '{"shots": 4',  # truncated mid-write (invalid JSON)
        # valid JSON, damaged payloads: every numeric field _apply_batch
        # sums must be validated, not just the record shape
        '{"shots": 400, "failures": [null, null, null], "decode_stats": {}}',
        '{"shots": 400, "failures": "many", "decode_stats": {}}',
        '{"shots": true, "failures": [0, 0, 0], "decode_stats": {}}',
        '{"shots": 400, "failures": [0, 0, 0], "decode_stats": {"decode_seconds": "fast"}}',
    ]
    n = 0
    for key in store.keys():  # corrupt every committed batch record
        for index in store.batch_indices(key):
            path = tmp_path / "s" / "batches" / key[:2] / key / f"{index}.json"
            path.write_text(corruptions[n % len(corruptions)])
            n += 1
    assert n > 0
    reset_warm_state()
    resumed = run_sweep(spec, store, workers=2, speculate=3)
    assert resumed.batches_replayed == 0  # nothing replayable survived
    got = _records(resumed)
    for key, ref in clean.items():
        assert _scrub(got[key]) == _scrub(ref)


def test_adaptive_batching_speculative_parity(tmp_path):
    spec = _spec(
        adaptive_batching=True,
        max_batch_shots=1600,
        max_shots=8000,
        target_rse=0.1,
    )
    reference = _records(run_sweep(spec, ResultStore(tmp_path / "ref")))
    for speculate, workers in ((1, 4), (4, 1), (4, 4)):
        reset_warm_state()
        report = run_sweep(
            spec,
            ResultStore(tmp_path / f"s{speculate}w{workers}"),
            workers=workers,
            speculate=speculate,
        )
        got = _records(report)
        for key, ref in reference.items():
            rec = got[key]
            assert _scrub(rec) == _scrub(ref), (speculate, workers)
            assert rec["batch_shots_next"] == ref["batch_shots_next"]


# ---------------------------------------------------------------------------
# edge cases
# ---------------------------------------------------------------------------


def test_concurrent_scheduler_handles_not_applicable_points(tmp_path):
    spec = _spec(
        policies=(
            PolicySpec("passive"),
            PolicySpec("extra_rounds", (("max_rounds", 0),)),
        ),
        taus_ns=(1000.0,),
        max_shots=800,
        target_rse=None,
    )
    report = run_sweep(spec, ResultStore(tmp_path), workers=2, speculate=2)
    statuses = sorted(o.record.get("status") for o in report.outcomes)
    assert statuses == ["not_applicable", "ok"]
    assert not report.interrupted


def test_concurrent_rerun_serves_entirely_from_store(tmp_path):
    spec = _spec(max_shots=800, target_rse=None)
    store = ResultStore(tmp_path)
    first = run_sweep(spec, store, workers=2, speculate=2)
    assert first.shots_decoded > 0
    again = run_sweep(spec, store, workers=2, speculate=2)
    assert again.shots_decoded == 0
    assert again.points_from_store == len(spec.points())
    assert _records(again).keys() == _records(first).keys()


def test_redo_dispatch_not_blocked_by_stale_pending_near_shot_cap(tmp_path):
    """White-box regression for a scheduler deadlock.

    Adaptive sizing near the shot cap: batches 0,1 applied (400 shots
    each), the plan grows to 800, batch 4 is already dispatched at 800,
    and batch 2 — decoded at the stale size 400 — was discarded to
    ``redo``.  The max-shots projection (800 applied + 400 + 800 pending
    >= 2000) must NOT block re-dispatching batch 2: the pending batches it
    counts can never be applied ahead of the in-order batch, so gating it
    stalls the scheduler (it used to raise "concurrent sweep scheduler
    stalled").  Sequential semantics: while unconverged, the next in-order
    batch is always decoded.
    """
    from concurrent.futures import Future

    from repro.experiments import sweeps as sweeps_module
    from repro.experiments.sweeps import _ConcurrentPoint, _SweepRun

    spec = _spec(
        taus_ns=(500.0,),
        policies=(PolicySpec("passive"),),
        batch_shots=400,
        min_shots=400,
        max_shots=2000,
        target_rse=None,
        adaptive_batching=True,
        max_batch_shots=800,
    )
    run = _SweepRun(spec, ResultStore(tmp_path), workers=2, speculate=4)
    (pt,) = spec.points()
    key, record, payload, resolved = run._prepare_point(pt)
    assert not resolved

    submitted = []

    def fake_submit(pool, task):
        submitted.append(task)
        return Future()  # never completes; we only test dispatch decisions

    state = _ConcurrentPoint(pt, key, record, payload, None, set())
    # batches 0 and 1 applied at 400 shots; the plan has since grown to 800
    record.update(shots=800, batches=2, batch_shots_next=800)
    # batch 4 in flight at the grown size, batch 3 completed at the stale
    # size, batch 2 discarded as stale and awaiting re-dispatch
    state.pending[3] = (
        {"shots": 400, "failures": [1] * len(record["failures"])}, False, None
    )
    state.inflight[4] = Future()
    state.sizes.update({3: 400, 4: 800})
    state.redo.add(2)
    state.next_index = 5

    futures = {}
    try:
        sweeps_module.submit_task, saved = fake_submit, sweeps_module.submit_task
        run._dispatch_point(state, depth=4, futures=futures)
    finally:
        sweeps_module.submit_task = saved
    run.close()
    # the in-order batch was re-dispatched at the planned size...
    assert 2 in state.inflight
    assert [t.shots for t in submitted] == [800]
    # ...but true speculation past the cap stayed blocked (no index 5+)
    assert state.next_index == 5


def test_stale_discard_counts_as_progress(tmp_path):
    """White-box regression for the other half of the stall: when every
    pending batch is stale and nothing is in flight, _drain must report the
    discard as progress so the scheduler loops back to re-dispatch instead
    of raising "concurrent sweep scheduler stalled"."""
    from repro.experiments.sweeps import _ConcurrentPoint, _SweepRun

    spec = _spec(
        taus_ns=(500.0,),
        policies=(PolicySpec("passive"),),
        batch_shots=400,
        min_shots=400,
        max_shots=4000,
        target_rse=None,
        adaptive_batching=True,
        max_batch_shots=800,
    )
    run = _SweepRun(spec, ResultStore(tmp_path), workers=2, speculate=4)
    (pt,) = spec.points()
    key, record, payload, resolved = run._prepare_point(pt)
    assert not resolved
    state = _ConcurrentPoint(pt, key, record, payload, None, set())
    record.update(shots=800, batches=2, batch_shots_next=800)  # plan grew
    nobs = len(record["failures"])
    for index in (2, 3, 4):  # completed at the stale size, none in flight
        state.pending[index] = ({"shots": 400, "failures": [0] * nobs}, False, None)
        state.sizes[index] = 400
    state.next_index = 5
    try:
        assert run._drain([state]) is True  # the discard is progress
    finally:
        run.close()
    assert state.redo == {2}
    assert 2 not in state.pending  # freed a window slot for the redo


def test_run_sweep_rejects_negative_speculate(tmp_path):
    with pytest.raises(ValueError, match="speculate"):
        run_sweep(_spec(), ResultStore(tmp_path), speculate=-1)


def test_speculative_interruption_checkpoints_partial_state(tmp_path):
    spec = _spec()
    store = ResultStore(tmp_path)
    partial = run_sweep(spec, store, workers=2, speculate=3, batch_limit=2)
    assert partial.interrupted
    assert store.summary()["partial"] >= 1  # checkpointed, resumable
    assert partial.shots_decoded <= 2 * spec.batch_shots


# ---------------------------------------------------------------------------
# admission ordering: bit-identical records, sweep-order emission
# ---------------------------------------------------------------------------


def test_admission_orders_bit_identical(tmp_path):
    spec = _spec()
    ref = run_sweep(spec, ResultStore(tmp_path / "ref"))
    ref_records = {k: _scrub(r) for k, r in _records(ref).items()}
    ref_keys = [o.key for o in ref.outcomes]

    for workers, speculate in ((1, 4), (4, 2)):  # inline and pool
        for admission in ("cost", "sweep"):
            reset_warm_state()
            store = ResultStore(tmp_path / f"a{workers}-{admission}")
            # seed asymmetric progress so the cost order genuinely differs
            # from sweep order (the first point is part-done, costing less)
            seeded = run_sweep(spec, store, batch_limit=2)
            assert seeded.interrupted
            reset_warm_state()
            report = run_sweep(
                spec, store, workers=workers, speculate=speculate,
                admission=admission,
            )
            got = {k: _scrub(r) for k, r in _records(report).items()}
            assert got == ref_records, (workers, admission)
            # emission order is the sweep grid order, never admission order
            assert [o.key for o in report.outcomes] == ref_keys


def test_unknown_admission_order_rejected(tmp_path):
    with pytest.raises(ValueError, match="admission"):
        run_sweep(
            _spec(), ResultStore(tmp_path), speculate=1,
            admission="fifo", ledger=False,
        )


# ---------------------------------------------------------------------------
# plan_sweep (`sweep run --dry-run`): cost model without decoding
# ---------------------------------------------------------------------------


def _tree_snapshot(root):
    import os

    snap = {}
    for dirpath, _, filenames in os.walk(root):
        for name in filenames:
            path = os.path.join(dirpath, name)
            st = os.stat(path)
            snap[os.path.relpath(path, root)] = (st.st_size, st.st_mtime_ns)
    return snap


def test_plan_sweep_decodes_nothing(tmp_path):
    from repro.experiments.sweeps import plan_sweep

    spec = _spec()
    root = tmp_path / "s"
    plan = plan_sweep(spec, ResultStore(root))
    assert not root.exists()  # read-only: not even the store root appears
    assert plan["totals"]["points"] == len(spec.points())
    assert plan["totals"]["decode"] == len(spec.points())
    # shot-cap worst case on an empty store: every batch of every point
    per_point = spec.max_shots // spec.batch_shots
    assert plan["totals"]["batches_remaining"] == per_point * len(spec.points())
    assert plan["totals"]["est_new_shots"] == spec.max_shots * len(spec.points())

    # a partially-run store: the plan reflects committed work, still read-only
    store = ResultStore(root)
    partial = run_sweep(spec, store, workers=2, speculate=3, batch_limit=4)
    assert partial.interrupted
    before = _tree_snapshot(root)
    plan2 = plan_sweep(spec, store)
    assert _tree_snapshot(root) == before  # byte-for-byte untouched
    assert plan2["totals"]["est_new_shots"] < plan["totals"]["est_new_shots"]
    statuses = {row["status"] for row in plan2["points"]}
    assert statuses <= {"partial", "converged", "missing"}

    # a finished store plans zero work
    reset_warm_state()
    run_sweep(spec, store)
    plan3 = plan_sweep(spec, store)
    assert plan3["totals"]["batches_remaining"] == 0
    assert plan3["totals"]["est_new_shots"] == 0
    assert all(row["status"] == "converged" for row in plan3["points"])


# ---------------------------------------------------------------------------
# worker crash: checkpoint in finally, ledger error, clean resume
# ---------------------------------------------------------------------------

#: (entropy, spawn_key) of the one batch _poisonable_run_task should fail;
#: module-level so fork-started pool workers inherit it, and picklable by
#: reference so ProcessPoolExecutor can ship the patched callable
_POISON = None
_REAL_RUN_TASK = None


def _poisonable_run_task(task):
    seed = task.seed
    if (
        _POISON is not None
        and getattr(seed, "entropy", None) == _POISON[0]
        and tuple(getattr(seed, "spawn_key", ()) or ()) == tuple(_POISON[1])
    ):
        raise RuntimeError("poisoned batch")
    return _REAL_RUN_TASK(task)


@pytest.mark.parametrize("workers", [1, 2])  # inline executor and real pool
def test_worker_crash_checkpoints_and_resumes(tmp_path, monkeypatch, workers):
    global _POISON, _REAL_RUN_TASK
    from repro.experiments import parallel
    from repro.obs import RunLedger
    from repro.store import batch_entropy

    spec = _spec()
    clean = {
        k: _scrub(r)
        for k, r in _records(run_sweep(spec, ResultStore(tmp_path / "c"))).items()
    }
    reset_warm_state()

    # poison the third batch of the last sweep point: every point of this
    # spec decodes >= 4 batches, so both schedulers genuinely reach it
    target = spec.points()[-1]
    target_key = target.key(seed=spec.seed, batch_shots=spec.batch_shots)
    _REAL_RUN_TASK = parallel._run_task.__wrapped__ if hasattr(
        parallel._run_task, "__wrapped__"
    ) else parallel._run_task
    _POISON = batch_entropy(spec.seed, target_key, 2)
    monkeypatch.setattr(parallel, "_run_task", _poisonable_run_task)

    store = ResultStore(tmp_path / "s")
    try:
        with pytest.raises(RuntimeError, match="poisoned batch"):
            run_sweep(spec, store, workers=workers, speculate=3, ledger=True)
    finally:
        _POISON = None

    # the ledger closed the run as an error
    ledger = RunLedger.for_store(store)
    rid = ledger.latest()
    assert rid is not None
    assert ledger.status(rid) == "error"
    # partial point records were checkpointed despite the crash
    assert any(store.get(k) is not None for k in clean)
    # sibling work that had already decoded stayed committed: log entries at
    # or past each record's applied prefix are what a resume can replay
    ahead = sum(
        sum(
            1
            for i in store.batch_indices(k)
            if i >= (store.get(k) or {}).get("batches", 0)
        )
        for k in clean
    )

    reset_warm_state()
    resumed = run_sweep(spec, store, workers=workers, speculate=3)
    assert not resumed.interrupted
    got = {k: _scrub(r) for k, r in _records(resumed).items()}
    assert got == clean  # bit-identical to the uninterrupted run
    if ahead:  # committed batches replayed instead of re-decoding
        assert resumed.batches_replayed > 0
