"""Hardware configs, idle twirl, DD model, and noise-model emission tests."""

import math

import pytest

from repro.noise import (
    BRISBANE_DD,
    DDModel,
    GOOGLE,
    IBM,
    PRESETS,
    QUERA,
    HardwareConfig,
    NoiseModel,
    idle_error_probability,
    idle_pauli_probs,
)
from repro.stab import Circuit


def test_cycle_times_match_table3():
    assert IBM.cycle_time_ns == pytest.approx(1900, abs=30)
    assert GOOGLE.cycle_time_ns == pytest.approx(1100, abs=30)
    assert QUERA.cycle_time_ns == pytest.approx(2.0e6, rel=0.05)


def test_presets_registry():
    assert set(PRESETS) == {"ibm", "google", "quera"}
    assert PRESETS["ibm"] is IBM


def test_with_cycle_time_stretches_readout():
    hw = GOOGLE.with_cycle_time(1000.0)
    assert hw.cycle_time_ns == pytest.approx(1000.0)
    assert hw.time_2q_ns == GOOGLE.time_2q_ns
    with pytest.raises(ValueError):
        GOOGLE.with_cycle_time(100.0)


def test_idle_probs_formula():
    px, py, pz = idle_pauli_probs(1000.0, 200_000.0, 150_000.0)
    assert px == py
    assert px == pytest.approx((1 - math.exp(-1000 / 200_000)) / 4)
    assert pz == pytest.approx((1 - math.exp(-1000 / 150_000)) / 2 - px)


def test_idle_probs_edge_cases():
    assert idle_pauli_probs(0.0, 1e5, 1e5) == (0.0, 0.0, 0.0)
    with pytest.raises(ValueError):
        idle_pauli_probs(-1.0, 1e5, 1e5)
    with pytest.raises(ValueError):
        idle_pauli_probs(10.0, 1e5, 3e5)  # T2 > 2 T1 unphysical


def test_idle_probability_monotone_in_duration():
    last = 0.0
    for tau in (10.0, 100.0, 1000.0, 10000.0):
        p = idle_error_probability(tau, IBM)
        assert p > last
        last = p


def test_idle_probability_smaller_for_longer_coherence():
    assert idle_error_probability(1000.0, QUERA) < idle_error_probability(1000.0, IBM)


def test_noise_model_emissions():
    noise = NoiseModel(hardware=IBM, p=1e-3)
    c = Circuit()
    noise.emit_clifford1(c, [0])
    noise.emit_clifford2(c, [0, 1])
    noise.emit_measure_flip(c, [0], "Z")
    noise.emit_measure_flip(c, [0], "X")
    noise.emit_reset_flip(c, [0], "Z")
    noise.emit_idle(c, [0], 500.0)
    names = [i.name for i in c.instructions]
    assert names == [
        "DEPOLARIZE1",
        "DEPOLARIZE2",
        "X_ERROR",
        "Z_ERROR",
        "X_ERROR",
        "PAULI_CHANNEL_1",
    ]


def test_noise_model_zero_p_emits_nothing():
    noise = NoiseModel(hardware=IBM, p=0.0)
    c = Circuit()
    noise.emit_clifford1(c, [0])
    noise.emit_measure_flip(c, [0], "Z")
    assert len(c.instructions) == 0


def test_idle_scale_suppresses_idle_channels():
    noise = NoiseModel(hardware=IBM, p=1e-3, idle_scale=0.0)
    c = Circuit()
    noise.emit_idle(c, [0], 1000.0)
    assert len(c.instructions) == 0


def test_idle_zero_duration_emits_nothing():
    noise = NoiseModel(hardware=IBM, p=1e-3)
    c = Circuit()
    noise.emit_idle(c, [0], 0.0)
    assert len(c.instructions) == 0


# --- DD model ----------------------------------------------------------------


def test_dd_fidelity_decreases_with_idle():
    f1 = BRISBANE_DD.sequence_fidelity(800.0, 1)
    f2 = BRISBANE_DD.sequence_fidelity(5600.0, 1)
    assert 0.5 <= f2 < f1 <= 1.0


def test_dd_splitting_improves_fidelity():
    """The Fig. 6 effect: N windows beat one window of the same total."""
    total = 3200.0
    passive = BRISBANE_DD.sequence_fidelity(total, 1)
    active_20 = BRISBANE_DD.sequence_fidelity(total, 20)
    active_200 = BRISBANE_DD.sequence_fidelity(total, 200)
    assert active_20 > passive
    assert active_200 > active_20


def test_dd_pulse_errors_limit_splitting():
    lossy = DDModel(t1_ns=220_000.0, tphi_ns=2_600.0, alpha=1.45, pulse_fidelity=0.99)
    total = 800.0
    assert lossy.sequence_fidelity(total, 10_000) < lossy.sequence_fidelity(total, 50)


def test_dd_requires_window():
    with pytest.raises(ValueError):
        BRISBANE_DD.sequence_fidelity(100.0, 0)
