"""Circuit IR tests: validation, record tracking, composition."""

import pytest

from repro.stab import Circuit
from repro.stab.gates import GATES, GateKind


def test_measurement_records_are_sequential():
    c = Circuit()
    c.append("R", [0, 1, 2])
    first = c.append("M", [0, 1])
    second = c.append("M", [2])
    assert first == [0, 1]
    assert second == [2]
    assert c.num_measurements == 3


def test_detector_validation_rejects_future_records():
    c = Circuit()
    c.append("R", [0])
    with pytest.raises(ValueError):
        c.detector([0])  # no measurement yet
    c.append("M", [0])
    c.detector([0])
    assert c.num_detectors == 1


def test_unknown_instruction_rejected():
    c = Circuit()
    with pytest.raises(ValueError):
        c.append("FROBNICATE", [0])


def test_probability_arity_enforced():
    c = Circuit()
    with pytest.raises(ValueError):
        c.append("X_ERROR", [0])  # missing prob
    with pytest.raises(ValueError):
        c.append("PAULI_CHANNEL_1", [0], [0.1])  # needs three
    with pytest.raises(ValueError):
        c.append("X_ERROR", [0], [1.5])  # out of range


def test_two_qubit_targets_must_pair():
    c = Circuit()
    with pytest.raises(ValueError):
        c.append("CX", [0])
    with pytest.raises(ValueError):
        c.append("CX", [0, 0])
    c.append("CX", [0, 1, 2, 3])
    assert c.num_qubits == 4


def test_observable_requires_index():
    c = Circuit()
    c.append("R", [0])
    c.append("M", [0])
    with pytest.raises(ValueError):
        c.append("OBSERVABLE_INCLUDE", rec=[0])
    c.observable_include(2, [0])
    assert c.num_observables == 3


def test_count_counts_per_application():
    c = Circuit()
    c.append("R", [0, 1])
    c.append("CX", [0, 1, 1, 0])
    c.append("H", [0, 1])
    assert c.count("CX") == 2
    assert c.count("H") == 2
    assert c.count("M") == 0


def test_without_noise_strips_channels_only():
    c = Circuit()
    c.append("R", [0])
    c.append("X_ERROR", [0], [0.1])
    c.append("DEPOLARIZE1", [0], [0.1])
    m = c.append("M", [0])
    c.detector(m)
    clean = c.without_noise()
    assert clean.count("X_ERROR") == 0
    assert clean.count("M") == 1
    assert clean.num_detectors == 1


def test_extend_shifts_records_and_observables():
    a = Circuit()
    a.append("R", [0])
    ra = a.append("M", [0])
    a.detector(ra)
    a.observable_include(0, ra)

    b = Circuit()
    b.append("R", [0])
    rb = b.append("M", [0])
    b.detector(rb)
    b.observable_include(0, rb)

    a.extend(b)
    assert a.num_measurements == 2
    assert a.num_detectors == 2
    assert a.detectors[1].rec == (1,)


def test_qubit_coords_tracked():
    c = Circuit()
    c.append("QUBIT_COORDS", [3], coords=(1.0, 2.0))
    assert c.qubit_coords[3] == (1.0, 2.0)


def test_to_text_contains_instructions():
    c = Circuit()
    c.append("R", [0])
    c.append("X_ERROR", [0], [0.25])
    m = c.append("M", [0])
    c.detector(m)
    text = c.to_text()
    assert "X_ERROR(0.25) 0" in text
    assert "DETECTOR" in text


def test_gate_table_consistency():
    for name, gate in GATES.items():
        assert gate.kind in vars(GateKind).values()
        if gate.kind in (GateKind.CLIFFORD_2, GateKind.NOISE_2):
            assert gate.targets_per_op == 2
