"""Logical-teleportation experiment tests (Fig. 3a machinery)."""

import pytest

from repro.codes.teleport import TeleportSpec, teleport_experiment
from repro.decoders import UnionFindDecoder, build_matching_graph, graphlike_distance
from repro.stab import DemSampler, circuit_to_dem, simulate_circuit
from repro.timing import PatchTimeline


def test_noiseless_determinism(ibm_noise):
    art = teleport_experiment(TeleportSpec(distance=3, noise=ibm_noise))
    clean = art.circuit.without_noise()
    for seed in range(6):
        _, det, obs = simulate_circuit(clean, seed)
        assert det.sum() == 0, f"seed {seed}: detectors fired"
        assert obs.sum() == 0, f"seed {seed}: teleported logical flipped"


def test_teleported_observable_protected(ibm_noise):
    art = teleport_experiment(TeleportSpec(distance=3, noise=ibm_noise))
    dem = circuit_to_dem(art.circuit)
    graph = build_matching_graph(dem, basis=art.detector_basis)
    assert graph.decomposition_fallbacks == 0
    assert graphlike_distance(graph, 0) == 3


def test_teleport_ler_reasonable(google_noise):
    art = teleport_experiment(TeleportSpec(distance=3, noise=google_noise))
    dem = circuit_to_dem(art.circuit)
    graph = build_matching_graph(dem, basis=art.detector_basis)
    det, obs = DemSampler(dem).sample(8000, rng=3)
    pred = UnionFindDecoder(graph).decode_batch(det)
    ler = float((pred[:, :1] ^ obs).mean())
    assert 0.0 < ler < 0.2


def test_slack_on_source_increases_ler(google_noise):
    lers = []
    for final_idle in (0.0, 1500.0):
        tl = PatchTimeline.uniform(4)
        tl.final_idle_ns = final_idle
        art = teleport_experiment(
            TeleportSpec(distance=3, noise=google_noise, timeline_p=tl)
        )
        dem = circuit_to_dem(art.circuit)
        graph = build_matching_graph(dem, basis=art.detector_basis)
        det, obs = DemSampler(dem).sample(12000, rng=4)
        pred = UnionFindDecoder(graph).decode_batch(det)
        lers.append(float((pred[:, :1] ^ obs).mean()))
    assert lers[1] > lers[0] * 0.95  # slack can only hurt (up to noise)


def test_invalid_distance(ibm_noise):
    with pytest.raises(ValueError):
        teleport_experiment(TeleportSpec(distance=1, noise=ibm_noise))


def test_round_counts_respected(ibm_noise):
    art = teleport_experiment(
        TeleportSpec(distance=3, noise=ibm_noise, rounds_pre=2, rounds_merged=3, rounds_post=2)
    )
    # source Z-checks measured: 2 pre + 3 merged; dst: 2 pre + 3 merged + 2 post
    # detector count sanity: per patch 4 Z-checks
    assert art.circuit.num_detectors > 0
    labels = {info.coords[2] for info in art.circuit.detectors}
    assert max(labels) == 2 + 3 + 2  # final readout label
