"""Cycle-time model tests: the four desynchronization sources of Sec. 3.2."""

import pytest

from repro.codes.cycle_time import (
    COLOR_CODE,
    QLDPC_BB,
    SURFACE_CODE,
    TWIST_SURFACE,
    CodeCycleModel,
    cycle_time_ns,
    modular_cycle_time_ns,
)
from repro.core import SyncScenario, make_policy
from repro.noise import GOOGLE, IBM


def test_surface_cycle_matches_hardware_preset():
    for hw in (IBM, GOOGLE):
        assert cycle_time_ns(SURFACE_CODE, hw) == pytest.approx(hw.cycle_time_ns)


def test_heterogeneous_code_ordering():
    """Fig. 3a: every alternative code has a longer logical clock."""
    for hw in (IBM, GOOGLE):
        t_s = cycle_time_ns(SURFACE_CODE, hw)
        assert cycle_time_ns(TWIST_SURFACE, hw) > t_s
        assert cycle_time_ns(QLDPC_BB, hw) > t_s
        assert cycle_time_ns(COLOR_CODE, hw) > cycle_time_ns(QLDPC_BB, hw)


def test_twist_adds_exactly_one_layer():
    assert cycle_time_ns(TWIST_SURFACE, IBM) - cycle_time_ns(SURFACE_CODE, IBM) == (
        pytest.approx(IBM.time_2q_ns)
    )


def test_qldpc_drift_matches_fig4b_rates():
    # IBM: 3 extra CNOT layers x 70 ns = 210 ns/round (Fig. 4b's slope)
    assert cycle_time_ns(QLDPC_BB, IBM) - cycle_time_ns(SURFACE_CODE, IBM) == (
        pytest.approx(210.0)
    )


def test_modular_boundary_stretches_cycle():
    base = modular_cycle_time_ns(IBM, boundary_cnot_layers=0)
    crossed = modular_cycle_time_ns(IBM, boundary_cnot_layers=1, coupler_slowdown=3.0)
    assert base == pytest.approx(IBM.cycle_time_ns)
    assert crossed - base == pytest.approx(2 * IBM.time_2q_ns)
    more = modular_cycle_time_ns(IBM, boundary_cnot_layers=2, coupler_slowdown=3.0)
    assert more > crossed


def test_modular_validation():
    with pytest.raises(ValueError):
        modular_cycle_time_ns(IBM, boundary_cnot_layers=5)
    with pytest.raises(ValueError):
        modular_cycle_time_ns(IBM, coupler_slowdown=0.5)


def test_modular_patch_synchronizes_via_hybrid():
    """A boundary-straddling patch can be synchronized with extra rounds."""
    t_pp = modular_cycle_time_ns(IBM, boundary_cnot_layers=1, coupler_slowdown=3.0)
    scenario = SyncScenario(
        t_p_ns=IBM.cycle_time_ns, t_pp_ns=t_pp, tau_ns=800.0, base_rounds=6
    )
    plan = make_policy("hybrid", eps_ns=400.0, max_rounds=200).plan(scenario)
    assert plan.extra_rounds_p >= 1
    assert plan.idle_ns < 400.0


def test_custom_cycle_model():
    model = CodeCycleModel(name="flagged", cnot_layers=6, measurement_passes=2)
    t = cycle_time_ns(model, GOOGLE)
    expected = (
        2 * GOOGLE.time_1q_ns
        + 6 * GOOGLE.time_2q_ns
        + 2 * (GOOGLE.time_readout_ns + GOOGLE.time_reset_ns)
    )
    assert t == pytest.approx(expected)
