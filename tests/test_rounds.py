"""Stabilizer-round emitter tests: layer structure, idle accounting."""

import pytest

from repro.codes import PatchLayout, QubitRegistry
from repro.codes.rounds import StabilizerRoundEmitter
from repro.noise import GOOGLE, NoiseModel
from repro.stab import Circuit
from repro.timing import RoundIdle


@pytest.fixture
def setup():
    layout = PatchLayout(0, 2, 3, vertical_basis="X")
    registry = QubitRegistry()
    circuit = Circuit()
    noise = NoiseModel(hardware=GOOGLE, p=1e-3)
    emitter = StabilizerRoundEmitter(circuit, registry, noise)
    patch_qubits = sorted(
        {registry.data(c) for c in layout.data_coords()}
        | {registry.ancilla(p.pos) for p in layout.plaquettes}
    )
    return layout, circuit, emitter, patch_qubits


def test_round_has_four_cnot_layers(setup):
    layout, circuit, emitter, patch_qubits = setup
    emitter.emit_round(layout.plaquettes, patch_qubits)
    assert circuit.count("H") == 2 * 4  # 4 X-plaquettes, two H layers
    cx_instructions = [i for i in circuit.instructions if i.name == "CX"]
    assert len(cx_instructions) == 4
    total_pairs = sum(len(i.targets) // 2 for i in cx_instructions)
    # every plaquette contributes one CNOT per occupied slot
    assert total_pairs == sum(p.weight for p in layout.plaquettes)


def test_round_measures_every_plaquette_once(setup):
    layout, circuit, emitter, patch_qubits = setup
    recs = emitter.emit_round(layout.plaquettes, patch_qubits)
    assert set(recs) == {p.pos for p in layout.plaquettes}
    assert len(set(recs.values())) == len(layout.plaquettes)
    assert circuit.num_measurements == len(layout.plaquettes)


def test_each_cnot_layer_touches_each_qubit_once(setup):
    layout, circuit, emitter, patch_qubits = setup
    emitter.emit_round(layout.plaquettes, patch_qubits)
    for inst in circuit.instructions:
        if inst.name == "CX":
            assert len(set(inst.targets)) == len(inst.targets)


def test_idle_windows_match_layer_durations(setup):
    layout, circuit, emitter, patch_qubits = setup
    emitter.emit_round(layout.plaquettes, patch_qubits)
    hw = GOOGLE
    idles = [i for i in circuit.instructions if i.name == "PAULI_CHANNEL_1"]
    # layers: H, 4x CX, H, readout -> 7 idle windows on inactive qubits
    assert len(idles) == 7
    from repro.noise import idle_pauli_probs

    expected_h = idle_pauli_probs(hw.time_1q_ns, hw.t1_ns, hw.t2_ns)
    scale = emitter.noise.structural_idle_scale
    assert idles[0].args[0] == pytest.approx(expected_h[0] * scale)
    expected_read = idle_pauli_probs(
        hw.time_readout_ns + hw.time_reset_ns, hw.t1_ns, hw.t2_ns
    )
    assert idles[-1].args[2] == pytest.approx(expected_read[2] * scale, rel=1e-9)


def test_data_qubits_idle_through_readout(setup):
    layout, circuit, emitter, patch_qubits = setup
    reg = emitter.registry
    emitter.emit_round(layout.plaquettes, patch_qubits)
    last_idle = [i for i in circuit.instructions if i.name == "PAULI_CHANNEL_1"][-1]
    data_qubits = {reg.data(c) for c in layout.data_coords()}
    assert set(last_idle.targets) == data_qubits


def test_pre_idle_covers_whole_patch(setup):
    layout, circuit, emitter, patch_qubits = setup
    emitter.emit_round(layout.plaquettes, patch_qubits, RoundIdle(pre_ns=333.0))
    first = circuit.instructions[0]
    assert first.name == "PAULI_CHANNEL_1"
    assert list(first.targets) == patch_qubits


def test_intra_idle_adds_six_gaps(setup):
    layout, circuit, emitter, patch_qubits = setup
    emitter.emit_round(layout.plaquettes, patch_qubits, RoundIdle(intra_ns=600.0))
    idles = [i for i in circuit.instructions if i.name == "PAULI_CHANNEL_1"]
    whole_patch = [i for i in idles if list(i.targets) == patch_qubits]
    assert len(whole_patch) == 6


def test_measurement_record_order_is_position_sorted(setup):
    layout, circuit, emitter, patch_qubits = setup
    recs = emitter.emit_round(layout.plaquettes, patch_qubits)
    ordered = sorted(recs, key=lambda pos: pos)
    values = [recs[pos] for pos in ordered]
    assert values == sorted(values)
