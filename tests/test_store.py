"""Result-store tests: round-trips, atomicity, key stability across processes."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments.ler import SurgeryLerConfig
from repro.noise import GOOGLE, IBM
from repro.store import (
    STORE_SALT,
    ResultStore,
    batch_entropy,
    default_store,
    point_key,
    point_payload,
    set_default_store,
)


def _config(**kwargs):
    base = dict(distance=3, hardware=GOOGLE, policy_name="passive", tau_ns=500.0)
    base.update(kwargs)
    return SurgeryLerConfig(**base)


def _key(config=None, **kwargs):
    args = dict(decoder="unionfind", seed=7, batch_shots=1000)
    args.update(kwargs)
    return point_key(config or _config(), "passive", (), **args)


# ---------------------------------------------------------------------------
# backend round-trips
# ---------------------------------------------------------------------------


def test_store_put_get_roundtrip(tmp_path):
    store = ResultStore(tmp_path)
    key = _key()
    assert store.get(key) is None
    assert key not in store
    record = {"shots": 1000, "failures": [3, 5], "converged": False}
    store.put(key, record)
    assert key in store
    got = store.get(key)
    assert got["shots"] == 1000
    assert got["failures"] == [3, 5]
    assert got["key"] == key  # stamped on write
    assert len(store) == 1
    assert store.keys() == [key]


def test_store_overwrite_and_delete(tmp_path):
    store = ResultStore(tmp_path)
    key = _key()
    store.put(key, {"shots": 1})
    store.put(key, {"shots": 2})
    assert store.get(key)["shots"] == 2
    assert store.delete(key)
    assert not store.delete(key)
    assert store.get(key) is None


def test_store_sharded_layout_and_clear(tmp_path):
    store = ResultStore(tmp_path)
    keys = [_key(seed=s) for s in range(5)]
    for k in keys:
        store.put(k, {"shots": 0})
    for k in keys:
        assert (Path(tmp_path) / "points" / k[:2] / f"{k}.json").exists()
    assert sorted(store.keys()) == sorted(keys)
    assert store.clear() == 5
    assert len(store) == 0


def test_store_rejects_malformed_keys(tmp_path):
    store = ResultStore(tmp_path)
    with pytest.raises(ValueError):
        store.get("../../etc/passwd")
    with pytest.raises(ValueError):
        store.put("zz", {})


def test_store_records_iteration_and_summary(tmp_path):
    store = ResultStore(tmp_path)
    store.put(_key(seed=1), {"shots": 100, "converged": True})
    store.put(_key(seed=2), {"shots": 50, "converged": False})
    store.put(_key(seed=3), {"shots": 0, "status": "not_applicable"})
    assert len(list(store.records())) == 3
    summary = store.summary()
    assert summary["records"] == 3
    assert summary["converged"] == 1
    assert summary["partial"] == 1
    assert summary["not_applicable"] == 1
    assert summary["stored_shots"] == 150


def test_default_store_resolution(tmp_path, monkeypatch):
    set_default_store(None)
    monkeypatch.delenv("REPRO_STORE_ROOT", raising=False)
    assert default_store() is None
    monkeypatch.setenv("REPRO_STORE_ROOT", str(tmp_path))
    assert default_store().root == Path(tmp_path)
    explicit = ResultStore(tmp_path / "explicit")
    set_default_store(explicit)
    try:
        assert default_store() is explicit
    finally:
        set_default_store(None)


# ---------------------------------------------------------------------------
# commit-ahead batch records (the speculative scheduler's log)
# ---------------------------------------------------------------------------


def test_batch_records_roundtrip_and_ordering(tmp_path):
    store = ResultStore(tmp_path)
    key = _key()
    assert store.get_batch(key, 0) is None
    assert store.batch_indices(key) == []
    for index in (2, 0, 1):
        store.put_batch(key, index, {"shots": 500, "failures": [index]})
    assert store.batch_indices(key) == [0, 1, 2]
    got = store.get_batch(key, 2)
    assert got["shots"] == 500
    assert got["failures"] == [2]
    assert got["index"] == 2 and got["key"] == key  # stamped on write
    # overwriting is allowed (batch contents are deterministic per size)
    store.put_batch(key, 2, {"shots": 1000, "failures": [9]})
    assert store.get_batch(key, 2)["shots"] == 1000
    with pytest.raises(ValueError):
        store.put_batch(key, -1, {"shots": 1})
    with pytest.raises(ValueError):
        store.put_batch("zz", 0, {"shots": 1})


def test_delete_batches_below_keeps_speculative_overshoot(tmp_path):
    store = ResultStore(tmp_path)
    key = _key()
    for index in range(4):
        store.put_batch(key, index, {"shots": 500, "failures": []})
    assert store.delete_batches(key, below=2) == 2
    assert store.batch_indices(key) == [2, 3]
    assert store.delete_batches(key) == 2
    assert store.batch_indices(key) == []
    # the emptied per-key dir is gone too
    assert not (tmp_path / "batches" / key[:2] / key).exists()


def test_get_batch_tolerates_corrupt_records(tmp_path):
    # batch records are derived data; a truncated write must read as
    # "absent" (re-decode) rather than crash the resume
    store = ResultStore(tmp_path)
    key = _key()
    store.put_batch(key, 0, {"shots": 100, "failures": [1]})
    path = tmp_path / "batches" / key[:2] / key / "0.json"
    path.write_text('{"shots": 100, "failu')  # truncated mid-write
    assert store.get_batch(key, 0) is None
    # overwriting repairs it
    store.put_batch(key, 0, {"shots": 100, "failures": [2]})
    assert store.get_batch(key, 0)["failures"] == [2]


def test_clear_removes_batches_and_orphans(tmp_path):
    store = ResultStore(tmp_path)
    key, orphan = _key(), _key(seed=99)
    store.put(key, {"shots": 100})
    store.put_batch(key, 0, {"shots": 100, "failures": [1]})
    store.put_batch(orphan, 0, {"shots": 100, "failures": [0]})  # no record
    assert store.clear() == 1
    assert store.batch_indices(key) == []
    assert store.batch_indices(orphan) == []
    # emptied per-prefix dirs are gone too, not just the per-key dirs
    assert not any((tmp_path / "batches").glob("??"))


def test_gc_prunes_batches_with_their_point_and_orphans(tmp_path):
    import os as _os

    store = ResultStore(tmp_path)
    stale, fresh, orphan = _key(seed=1), _key(seed=2), _key(seed=3)
    store.put(stale, {"shots": 1, "updated_at": 1.0})
    store.put_batch(stale, 0, {"shots": 1, "failures": []})
    store.put(fresh, {"shots": 1})  # mtime now: survives
    store.put_batch(fresh, 0, {"shots": 1, "failures": []})
    store.put_batch(orphan, 0, {"shots": 1, "failures": []})
    _os.utime(tmp_path / "batches" / orphan[:2] / orphan / "0.json", (1.0, 1.0))

    preview = store.gc(older_than_seconds=30 * 86400, dry_run=True)
    assert preview["pruned_keys"] == [stale]
    assert preview["batches_pruned"] == 2  # stale's batch + the old orphan
    assert store.batch_indices(stale) == [0]  # dry run touched nothing
    assert store.batch_indices(orphan) == [0]
    # the dry run predicts which batches/ prefix dirs the prune will empty
    for key in (stale, orphan):
        if key[:2] != fresh[:2]:
            assert f"batches/{key[:2]}" in preview["dirs_removed"]
    assert f"batches/{fresh[:2]}" not in preview["dirs_removed"]

    result = store.gc(older_than_seconds=30 * 86400)
    assert result["batches_pruned"] == 2
    assert store.batch_indices(stale) == []
    assert store.batch_indices(orphan) == []
    assert store.batch_indices(fresh) == [0]  # fresh point keeps its log
    for key in (stale, orphan):
        if key[:2] != fresh[:2]:
            assert not (tmp_path / "batches" / key[:2]).exists()
    assert (tmp_path / "batches" / fresh[:2]).exists()


# ---------------------------------------------------------------------------
# content-addressed keys
# ---------------------------------------------------------------------------


def test_point_key_sensitivity():
    base = _key()
    assert _key() == base  # deterministic
    assert _key(_config(distance=5)) != base
    assert _key(_config(hardware=IBM)) != base
    assert _key(_config(p=2e-3)) != base
    assert _key(decoder="mwpm") != base
    assert _key(seed=8) != base
    assert _key(batch_shots=2000) != base
    assert point_key(_config(), "active", (), decoder="unionfind", seed=7, batch_shots=1000) != base
    assert (
        point_key(
            _config(),
            "passive",
            (("eps_ns", 100.0),),
            decoder="unionfind",
            seed=7,
            batch_shots=1000,
        )
        != base
    )
    assert _key(salt=STORE_SALT + "-next") != base


def test_point_payload_is_json_canonical():
    payload = point_payload(
        _config(), "passive", (), decoder="unionfind", seed=7, batch_shots=1000
    )
    # round-trips through JSON without loss (the property the hash relies on)
    assert json.loads(json.dumps(payload, sort_keys=True)) == payload


def test_point_key_stable_across_processes():
    """The key must not depend on PYTHONHASHSEED or interpreter state."""
    prog = (
        "from repro.experiments.ler import SurgeryLerConfig\n"
        "from repro.noise import GOOGLE\n"
        "from repro.store import point_key\n"
        "cfg = SurgeryLerConfig(distance=3, hardware=GOOGLE,"
        " policy_name='passive', tau_ns=500.0)\n"
        "print(point_key(cfg, 'passive', (('eps_ns', 100.0),),"
        " decoder='unionfind', seed=7, batch_shots=1000))\n"
    )
    keys = set()
    for hashseed in ("1", "2"):
        out = subprocess.run(
            [sys.executable, "-c", prog],
            capture_output=True,
            text=True,
            env={
                "PYTHONPATH": str(Path(__file__).resolve().parent.parent / "src"),
                "PYTHONHASHSEED": hashseed,
                "PATH": "/usr/bin:/bin",
            },
            check=True,
        )
        keys.add(out.stdout.strip())
    in_process = point_key(
        _config(),
        "passive",
        (("eps_ns", 100.0),),
        decoder="unionfind",
        seed=7,
        batch_shots=1000,
    )
    assert keys == {in_process}


def test_batch_entropy_is_pure():
    key = _key()
    assert batch_entropy(7, key, 0) == batch_entropy(7, key, 0)
    assert batch_entropy(7, key, 0) != batch_entropy(7, key, 1)
    assert batch_entropy(8, key, 0) != batch_entropy(7, key, 0)
    entropy, spawn_key = batch_entropy(7, key, 3)
    assert entropy == 7
    assert spawn_key[1] == 3
