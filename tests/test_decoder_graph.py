"""Matching-graph construction and graphlike-distance tests."""

import numpy as np
import pytest

from repro.decoders import build_matching_graph, graphlike_distance
from repro.stab.dem import DemError, DetectorErrorModel


def _dem(errors, ndet, nobs=1):
    return DetectorErrorModel(
        errors=[DemError(p, d, o) for p, d, o in errors],
        num_detectors=ndet,
        num_observables=nobs,
        detector_coords=[() for _ in range(ndet)],
        detector_basis=["Z"] * ndet,
    )


def test_boundary_and_bulk_edges():
    dem = _dem(
        [
            (0.1, (0,), (0,)),  # boundary edge flipping the observable
            (0.1, (0, 1), ()),  # bulk edge
            (0.1, (1,), ()),  # boundary edge
        ],
        ndet=2,
    )
    g = build_matching_graph(dem)
    assert g.num_edges == 3
    assert g.boundary_node == 2
    assert set(zip(g.edge_u.tolist(), g.edge_v.tolist())) == {(0, 2), (0, 1), (1, 2)}


def test_parallel_edges_with_distinct_obs_kept():
    dem = _dem([(0.1, (0, 1), ()), (0.05, (0, 1), (0,))], ndet=2)
    g = build_matching_graph(dem)
    assert g.num_edges == 2
    masks = set(g.edge_obs.tolist())
    assert masks == {0, 1}


def test_same_signature_probabilities_combine():
    dem = _dem([(0.1, (0, 1), ()), (0.2, (0, 1), ())], ndet=2)
    g = build_matching_graph(dem)
    assert g.num_edges == 1
    assert g.edge_prob[0] == pytest.approx(0.1 * 0.8 + 0.2 * 0.9)


def test_undetectable_obs_probability_recorded():
    dem = _dem([(0.01, (), (0,)), (0.1, (0,), ())], ndet=1)
    g = build_matching_graph(dem)
    assert g.undetectable_obs_probability[0] == pytest.approx(0.01)


def test_composite_error_decomposed_into_known_edges():
    dem = _dem(
        [
            (0.1, (0, 1), ()),
            (0.1, (2, 3), (0,)),
            (0.01, (0, 1, 2, 3), (0,)),  # must split into the two known pairs
        ],
        ndet=4,
    )
    g = build_matching_graph(dem)
    assert g.decomposition_fallbacks == 0
    assert g.num_edges == 2
    pair_01 = np.flatnonzero((g.edge_u == 0) & (g.edge_v == 1))[0]
    assert g.edge_prob[pair_01] == pytest.approx(0.1 * 0.99 + 0.01 * 0.9)


def test_composite_fallback_counted():
    dem = _dem([(0.01, (0, 1, 2), ())], ndet=3)
    g = build_matching_graph(dem)
    assert g.decomposition_fallbacks == 1


def test_weights_positive_and_monotone():
    dem = _dem([(0.01, (0, 1), ()), (0.2, (1, 2), ())], ndet=3)
    g = build_matching_graph(dem)
    w = dict(zip(zip(g.edge_u.tolist(), g.edge_v.tolist()), g.edge_weight.tolist()))
    assert w[(0, 1)] > w[(1, 2)] > 0


def test_integer_weights_are_even_and_positive():
    dem = _dem([(0.01, (0, 1), ()), (0.2, (1, 2), ())], ndet=3)
    g = build_matching_graph(dem)
    iw = g.integer_weights()
    assert (iw >= 2).all()
    assert (iw % 2 == 0).all()


def test_graphlike_distance_chain():
    # boundary - 0 - 1 - 2 - boundary; the logical crosses the chain once,
    # so the shortest undetectable observable flip is the full 4-edge chain.
    dem = _dem(
        [
            (0.1, (0,), (0,)),
            (0.1, (0, 1), ()),
            (0.1, (1, 2), ()),
            (0.1, (2,), ()),
        ],
        ndet=3,
    )
    g = build_matching_graph(dem)
    assert graphlike_distance(g, 0) == 4


def test_graphlike_distance_short_circuit():
    # two boundary edges on the same detector, one flips the observable
    dem = _dem([(0.1, (0,), (0,)), (0.1, (0,), ())], ndet=1)
    g = build_matching_graph(dem)
    assert graphlike_distance(g, 0) == 2


def test_graphlike_distance_unreachable():
    dem = _dem([(0.1, (0, 1), ())], ndet=2)
    g = build_matching_graph(dem)
    assert graphlike_distance(g, 0) == -1


def test_basis_filter_restricts_detectors():
    dem = DetectorErrorModel(
        errors=[DemError(0.1, (0,), ()), DemError(0.1, (1,), (0,))],
        num_detectors=2,
        num_observables=1,
        detector_coords=[(), ()],
        detector_basis=["X", "Z"],
    )
    g = build_matching_graph(dem, basis="Z")
    assert g.num_detectors == 1
    assert g.num_edges == 1
    assert g.edge_obs[0] == 1
