"""Integration: end-to-end policy comparisons at reduced scale.

These run the full pipeline (policy -> circuit -> DEM -> sampling -> decode)
and assert the paper's qualitative orderings with margins wide enough to be
stable at CI-scale shot counts.
"""

import pytest

from repro.core import make_policy
from repro.experiments import SurgeryLerConfig, run_surgery_ler
from repro.noise import GOOGLE

SHOTS = 12_000
SEED = 99


def _ler(policy_name, joint=True, **kw):
    kwargs = kw.pop("policy_kwargs", {})
    cfg = SurgeryLerConfig(
        distance=kw.pop("distance", 3),
        hardware=GOOGLE,
        policy_name=policy_name,
        tau_ns=kw.pop("tau_ns", 1000.0),
        policy_args=tuple(sorted(kwargs.items())),
        **kw,
    )
    res = run_surgery_ler(cfg, make_policy(policy_name, **kwargs), SHOTS, SEED)
    return res.estimates[1 if joint else 0].rate


@pytest.mark.slow
def test_passive_worse_than_ideal():
    assert _ler("passive") > _ler("ideal")


@pytest.mark.slow
def test_active_between_ideal_and_passive():
    ideal = _ler("ideal", joint=False)
    active = _ler("active", joint=False)
    passive = _ler("passive", joint=False)
    assert ideal <= active * 1.2
    assert active <= passive * 1.15  # active never loses meaningfully


@pytest.mark.slow
def test_slack_hurts_more_when_larger():
    small = _ler("passive", tau_ns=250.0)
    large = _ler("passive", tau_ns=1000.0)
    assert large >= small * 0.9  # monotone up to shot noise


@pytest.mark.slow
def test_lagging_patch_unaffected_by_leading_slack():
    """The slack idles P; the P' observable must not degrade."""
    cfg_i = SurgeryLerConfig(distance=3, hardware=GOOGLE, policy_name="ideal", tau_ns=0.0)
    cfg_p = SurgeryLerConfig(distance=3, hardware=GOOGLE, policy_name="passive", tau_ns=1000.0)
    ideal = run_surgery_ler(cfg_i, make_policy("ideal"), SHOTS, SEED).estimates[2].rate
    passive = run_surgery_ler(cfg_p, make_policy("passive"), SHOTS, SEED).estimates[2].rate
    assert passive < ideal * 1.5 + 2e-3


@pytest.mark.slow
def test_hybrid_runs_fewer_idle_ns_than_active():
    t_pp = GOOGLE.cycle_time_ns + 225.0
    cfg_h = SurgeryLerConfig(
        distance=3, hardware=GOOGLE, policy_name="hybrid", tau_ns=1000.0, t_pp_ns=t_pp,
        policy_args=(("eps_ns", 400.0), ("max_rounds", 100)),
    )
    res = run_surgery_ler(
        cfg_h, make_policy("hybrid", eps_ns=400.0, max_rounds=100), 2000, SEED
    )
    assert res.plan_summary["idle_ns"] < 400.0
    assert res.plan_summary["extra_rounds_p"] >= 1
