"""Memory-experiment circuit tests."""

import numpy as np
import pytest

from repro.codes import memory_experiment
from repro.decoders import UnionFindDecoder, build_matching_graph
from repro.stab import DemSampler, circuit_to_dem, simulate_circuit
from repro.timing import PatchTimeline


@pytest.mark.parametrize("basis", ["X", "Z"])
def test_noiseless_determinism(basis, ibm_noise):
    art = memory_experiment(3, 4, ibm_noise, basis=basis)
    clean = art.circuit.without_noise()
    for seed in range(4):
        _, det, obs = simulate_circuit(clean, seed)
        assert det.sum() == 0
        assert obs.sum() == 0


def test_detector_count(ibm_noise):
    d, rounds = 3, 4
    art = memory_experiment(d, rounds, ibm_noise)
    checks = (d * d - 1) // 2
    assert art.circuit.num_detectors == checks * (rounds + 1)


def test_detector_coords_cover_all_rounds(ibm_noise):
    art = memory_experiment(3, 3, ibm_noise)
    rounds = {info.coords[2] for info in art.circuit.detectors}
    assert rounds == {0, 1, 2, 3}


def test_observable_is_vertical_column(ibm_noise):
    d = 3
    art = memory_experiment(d, 2, ibm_noise, basis="Z")
    obs_inst = [i for i in art.circuit.instructions if i.name == "OBSERVABLE_INCLUDE"]
    assert len(obs_inst) == 1
    assert len(obs_inst[0].rec) == d


def test_ler_decreases_with_distance(quiet_noise):
    lers = []
    for d in (3, 5):
        art = memory_experiment(d, d, quiet_noise)
        dem = circuit_to_dem(art.circuit)
        graph = build_matching_graph(dem, basis="Z")
        det, obs = DemSampler(dem).sample(50000, rng=1)
        pred = UnionFindDecoder(graph).decode_batch(det)
        lers.append(float((pred[:, :1] ^ obs).mean()))
    assert lers[1] < lers[0]


def test_ler_increases_with_physical_error(quiet_noise):
    from repro.noise import NoiseModel

    lers = []
    for p in (1e-3, 5e-3):
        noise = NoiseModel(hardware=quiet_noise.hardware, p=p, idle_scale=0.0)
        art = memory_experiment(3, 3, noise)
        dem = circuit_to_dem(art.circuit)
        graph = build_matching_graph(dem, basis="Z")
        det, obs = DemSampler(dem).sample(30000, rng=2)
        pred = UnionFindDecoder(graph).decode_batch(det)
        lers.append(float((pred[:, :1] ^ obs).mean()))
    assert lers[1] > lers[0]


def test_timeline_adds_idle_channels(google_noise):
    base = memory_experiment(3, 4, google_noise)
    idled = memory_experiment(
        3, 4, google_noise, timeline=PatchTimeline.uniform(4, pre_ns=500.0)
    )
    count = lambda c: sum(1 for i in c.instructions if i.name == "PAULI_CHANNEL_1")
    assert count(idled.circuit) > count(base.circuit)


def test_timeline_length_must_match(google_noise):
    with pytest.raises(ValueError):
        memory_experiment(3, 4, google_noise, timeline=PatchTimeline.uniform(3))


def test_invalid_args(ibm_noise):
    with pytest.raises(ValueError):
        memory_experiment(3, 0, ibm_noise)
    with pytest.raises(ValueError):
        memory_experiment(3, 2, ibm_noise, basis="Y")
