"""Pauli-string algebra tests, including hypothesis group-law checks."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.stab.pauli import PauliString


def test_identity_construction():
    p = PauliString.identity(4)
    assert p.num_qubits == 4
    assert p.weight == 0
    assert p.label() == "+IIII"


def test_from_label_round_trip():
    for label in ("+XIZY", "-YY", "+IIII", "+Z"):
        assert PauliString.from_label(label).label() == label


def test_from_label_rejects_garbage():
    with pytest.raises(ValueError):
        PauliString.from_label("XQ")


def test_single_qubit_embedding():
    p = PauliString.single(3, 1, "Y")
    assert p.label() == "+IYI"
    assert p.weight == 1


def test_known_products():
    x = PauliString.from_label("X")
    z = PauliString.from_label("Z")
    y = PauliString.from_label("Y")
    assert (x * z).label() == "-iY"
    assert (z * x).label() == "+iY"
    assert (x * y).label() == "+iZ"
    assert (x * x).label() == "+I"


def test_commutation():
    assert not PauliString.from_label("X").commutes_with(PauliString.from_label("Z"))
    assert PauliString.from_label("XX").commutes_with(PauliString.from_label("ZZ"))
    assert PauliString.from_label("XI").commutes_with(PauliString.from_label("IZ"))


def test_support():
    p = PauliString.from_label("IXIZ")
    assert list(p.support()) == [1, 3]


def test_mismatched_sizes_raise():
    with pytest.raises(ValueError):
        PauliString.from_label("XX") * PauliString.from_label("X")
    with pytest.raises(ValueError):
        PauliString.from_label("XX").commutes_with(PauliString.from_label("X"))


def test_hash_and_eq():
    a = PauliString.from_label("XZ")
    b = PauliString.from_label("XZ")
    assert a == b and hash(a) == hash(b)
    assert a != PauliString.from_label("-XZ")


@st.composite
def pauli_strings(draw, n=4):
    xs = draw(st.lists(st.booleans(), min_size=n, max_size=n))
    zs = draw(st.lists(st.booleans(), min_size=n, max_size=n))
    phase = draw(st.integers(0, 3))
    return PauliString(np.array(xs), np.array(zs), phase)


@given(pauli_strings(), pauli_strings(), pauli_strings())
def test_multiplication_is_associative(a, b, c):
    assert (a * b) * c == a * (b * c)


@given(pauli_strings())
def test_square_is_plus_or_minus_identity(p):
    sq = p * p
    assert sq.weight == 0
    assert sq.phase in (0, 2)


@given(pauli_strings(), pauli_strings())
def test_commute_or_anticommute(a, b):
    ab = a * b
    ba = b * a
    if a.commutes_with(b):
        assert ab == ba
    else:
        assert ab.phase == (ba.phase + 2) % 4
        assert np.array_equal(ab.xs, ba.xs) and np.array_equal(ab.zs, ba.zs)
