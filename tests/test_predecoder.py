"""Predecoder tests: locality, accuracy preservation, offload statistics."""

import numpy as np
import pytest

from repro.codes import memory_experiment
from repro.decoders import UnionFindDecoder, build_matching_graph
from repro.decoders.predecoder import PredecodedDecoder, Predecoder
from repro.stab import DemSampler, circuit_to_dem
from repro.stab.dem import DemError, DetectorErrorModel


def _chain_graph(n=4):
    errors = [DemError(0.05, (0,), (0,))]
    for i in range(n - 1):
        errors.append(DemError(0.05, (i, i + 1), ()))
    errors.append(DemError(0.05, (n - 1,), ()))
    return build_matching_graph(
        DetectorErrorModel(
            errors=errors,
            num_detectors=n,
            num_observables=1,
            detector_coords=[()] * n,
            detector_basis=["Z"] * n,
        )
    )


def test_isolated_pair_removed():
    g = _chain_graph()
    pre = Predecoder(g)
    syndrome = np.array([False, True, True, False])
    residual, mask, removed = pre.apply(syndrome)
    assert removed == 2
    assert not residual.any()
    assert mask == 0  # interior edge carries no observable


def test_lonely_boundary_defect_removed():
    g = _chain_graph()
    pre = Predecoder(g)
    syndrome = np.array([True, False, False, False])
    residual, mask, removed = pre.apply(syndrome)
    assert removed == 1
    assert not residual.any()
    assert mask == 1  # the left boundary edge flips the observable


def test_ambiguous_cluster_left_for_global_decoder():
    g = _chain_graph()
    pre = Predecoder(g)
    syndrome = np.array([True, True, True, False])  # 3 in a row: ambiguous
    residual, mask, removed = pre.apply(syndrome)
    assert residual.sum() >= 1  # something survives for the slow decoder


def test_predecoded_matches_plain_decoder_accuracy(quiet_noise):
    art = memory_experiment(3, 3, quiet_noise)
    dem = circuit_to_dem(art.circuit)
    g = build_matching_graph(dem, basis="Z")
    det, obs = DemSampler(dem).sample(30000, rng=2)
    plain = UnionFindDecoder(g)
    wrapped = PredecodedDecoder(g, UnionFindDecoder(g))
    ler_plain = float((plain.decode_batch(det)[:, :1] ^ obs).mean())
    ler_wrapped = float((wrapped.decode_batch(det)[:, :1] ^ obs).mean())
    # local pairs are optimal moves at low p: accuracy within a small factor
    assert ler_wrapped <= max(2.0 * ler_plain, ler_plain + 5e-4)


def test_offload_statistics(quiet_noise):
    art = memory_experiment(3, 3, quiet_noise)
    dem = circuit_to_dem(art.circuit)
    g = build_matching_graph(dem, basis="Z")
    det, _ = DemSampler(dem).sample(5000, rng=3)
    wrapped = PredecodedDecoder(g, UnionFindDecoder(g))
    wrapped.decode_batch(det)
    stats = wrapped.stats
    assert stats.shots == 5000
    # at p=1e-3 almost every nontrivial shot is a single isolated pair
    assert stats.removal_fraction > 0.5
    assert stats.offload_fraction > 0.9
