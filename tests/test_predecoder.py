"""Predecoder tests: locality, accuracy preservation, offload statistics."""

import numpy as np
import pytest

from repro.codes import memory_experiment
from repro.decoders import UnionFindDecoder, build_matching_graph
from repro.decoders.predecoder import PredecodedDecoder, Predecoder
from repro.stab import DemSampler, circuit_to_dem
from repro.stab.dem import DemError, DetectorErrorModel


def _chain_graph(n=4):
    errors = [DemError(0.05, (0,), (0,))]
    for i in range(n - 1):
        errors.append(DemError(0.05, (i, i + 1), ()))
    errors.append(DemError(0.05, (n - 1,), ()))
    return build_matching_graph(
        DetectorErrorModel(
            errors=errors,
            num_detectors=n,
            num_observables=1,
            detector_coords=[()] * n,
            detector_basis=["Z"] * n,
        )
    )


def test_isolated_pair_removed():
    g = _chain_graph()
    pre = Predecoder(g)
    syndrome = np.array([False, True, True, False])
    residual, mask, removed = pre.apply(syndrome)
    assert removed == 2
    assert not residual.any()
    assert mask == 0  # interior edge carries no observable


def test_lonely_boundary_defect_removed():
    g = _chain_graph()
    pre = Predecoder(g)
    syndrome = np.array([True, False, False, False])
    residual, mask, removed = pre.apply(syndrome)
    assert removed == 1
    assert not residual.any()
    assert mask == 1  # the left boundary edge flips the observable


def test_ambiguous_cluster_left_for_global_decoder():
    g = _chain_graph()
    pre = Predecoder(g)
    syndrome = np.array([True, True, True, False])  # 3 in a row: ambiguous
    residual, mask, removed = pre.apply(syndrome)
    assert residual.sum() >= 1  # something survives for the slow decoder


def test_predecoded_matches_plain_decoder_accuracy(quiet_noise):
    art = memory_experiment(3, 3, quiet_noise)
    dem = circuit_to_dem(art.circuit)
    g = build_matching_graph(dem, basis="Z")
    det, obs = DemSampler(dem).sample(30000, rng=2)
    plain = UnionFindDecoder(g)
    wrapped = PredecodedDecoder(g, UnionFindDecoder(g))
    ler_plain = float((plain.decode_batch(det)[:, :1] ^ obs).mean())
    ler_wrapped = float((wrapped.decode_batch(det)[:, :1] ^ obs).mean())
    # local pairs are optimal moves at low p: accuracy within a small factor
    assert ler_wrapped <= max(2.0 * ler_plain, ler_plain + 5e-4)


def test_offload_statistics(quiet_noise):
    art = memory_experiment(3, 3, quiet_noise)
    dem = circuit_to_dem(art.circuit)
    g = build_matching_graph(dem, basis="Z")
    det, _ = DemSampler(dem).sample(5000, rng=3)
    wrapped = PredecodedDecoder(g, UnionFindDecoder(g))
    wrapped.decode_batch(det)
    stats = wrapped.stats
    assert stats.shots == 5000
    # at p=1e-3 almost every nontrivial shot is a single isolated pair
    assert stats.removal_fraction > 0.5
    assert stats.offload_fraction > 0.9


# ---------------------------------------------------------------------------
# vectorized batch pass: bit-identical to the scalar per-row loop
# ---------------------------------------------------------------------------


def test_apply_batch_matches_scalar_on_chain_graph():
    g = _chain_graph()
    pre = Predecoder(g)
    # every syndrome of the 4-detector chain, exhaustively
    rows = np.array(
        [[bool(v >> i & 1) for i in range(4)] for v in range(16)], dtype=bool
    )
    residuals, masks, removed = pre.apply_batch(rows)
    for i in range(rows.shape[0]):
        res, mask, rem = pre.apply(rows[i])
        assert np.array_equal(residuals[i], res), rows[i]
        assert int(masks[i]) == mask, rows[i]
        assert removed[i] == rem, rows[i]


@pytest.mark.parametrize("density", [0.0, 0.02, 0.1, 0.3])
def test_apply_batch_matches_scalar_on_surface_graph(quiet_noise, density):
    art = memory_experiment(3, 3, quiet_noise)
    dem = circuit_to_dem(art.circuit)
    g = build_matching_graph(dem, basis="Z")
    rng = np.random.default_rng(int(density * 100))
    rows = rng.random((300, g.num_detectors)) < density
    pre = Predecoder(g)
    residuals, masks, removed = pre.apply_batch(rows)
    for i in range(rows.shape[0]):
        res, mask, rem = pre.apply(rows[i])
        assert np.array_equal(residuals[i], res)
        assert int(masks[i]) == mask
        assert removed[i] == rem


def test_apply_batch_rejects_bad_shapes():
    pre = Predecoder(_chain_graph())
    with pytest.raises(ValueError):
        pre.apply_batch(np.zeros(4, dtype=bool))
    with pytest.raises(ValueError):
        pre.apply_batch(np.zeros((2, 5), dtype=bool))


def test_predecoded_batch_path_uses_vectorized_pass(quiet_noise, monkeypatch):
    art = memory_experiment(3, 3, quiet_noise)
    dem = circuit_to_dem(art.circuit)
    g = build_matching_graph(dem, basis="Z")
    det, _ = DemSampler(dem).sample(4000, rng=5)
    wrapped = PredecodedDecoder(g, UnionFindDecoder(g))
    calls = {"scalar": 0}
    original = Predecoder.apply

    def counting_apply(self, detectors):
        calls["scalar"] += 1
        return original(self, detectors)

    monkeypatch.setattr(Predecoder, "apply", counting_apply)
    batched = wrapped.decode_batch(det)
    assert calls["scalar"] == 0  # no per-syndrome python pass on the fast path
    reference = PredecodedDecoder(g, UnionFindDecoder(g))
    assert np.array_equal(batched, reference.decode_batch(det, dedup=False))
    assert vars(wrapped.stats) == vars(reference.stats)
