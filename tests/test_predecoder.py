"""Predecoder tests: locality, accuracy preservation, offload statistics.

Graphs and samples come from the shared fixture factory in ``conftest.py``
(``chain_graph``, ``surface_case``, ``dense_syndromes``).
"""

import numpy as np
import pytest

from repro.decoders import UnionFindDecoder
from repro.decoders.predecoder import PredecodedDecoder, Predecoder


def test_isolated_pair_removed(chain_graph):
    pre = Predecoder(chain_graph(4))
    syndrome = np.array([False, True, True, False])
    residual, mask, removed = pre.apply(syndrome)
    assert removed == 2
    assert not residual.any()
    assert mask == 0  # interior edge carries no observable


def test_lonely_boundary_defect_removed(chain_graph):
    pre = Predecoder(chain_graph(4))
    syndrome = np.array([True, False, False, False])
    residual, mask, removed = pre.apply(syndrome)
    assert removed == 1
    assert not residual.any()
    assert mask == 1  # the left boundary edge flips the observable


def test_ambiguous_cluster_left_for_global_decoder(chain_graph):
    pre = Predecoder(chain_graph(4))
    syndrome = np.array([True, True, True, False])  # 3 in a row: ambiguous
    residual, mask, removed = pre.apply(syndrome)
    assert residual.sum() >= 1  # something survives for the slow decoder


def test_predecoded_matches_plain_decoder_accuracy(surface_case):
    g, det, obs = surface_case(3, 1e-3, 30000, 2)
    plain = UnionFindDecoder(g)
    wrapped = PredecodedDecoder(g, UnionFindDecoder(g))
    ler_plain = float((plain.decode_batch(det)[:, :1] ^ obs).mean())
    ler_wrapped = float((wrapped.decode_batch(det)[:, :1] ^ obs).mean())
    # local pairs are optimal moves at low p: accuracy within a small factor
    assert ler_wrapped <= max(2.0 * ler_plain, ler_plain + 5e-4)


def test_offload_statistics(surface_case):
    g, det, _ = surface_case(3, 1e-3, 5000, 3)
    wrapped = PredecodedDecoder(g, UnionFindDecoder(g))
    wrapped.decode_batch(det)
    stats = wrapped.stats
    assert stats.shots == 5000
    # at p=1e-3 almost every nontrivial shot is a single isolated pair
    assert stats.removal_fraction > 0.5
    assert stats.offload_fraction > 0.9


# ---------------------------------------------------------------------------
# vectorized batch pass: bit-identical to the scalar per-row loop
# ---------------------------------------------------------------------------


def test_apply_batch_matches_scalar_on_chain_graph(chain_graph):
    pre = Predecoder(chain_graph(4))
    # every syndrome of the 4-detector chain, exhaustively
    rows = np.array(
        [[bool(v >> i & 1) for i in range(4)] for v in range(16)], dtype=bool
    )
    residuals, masks, removed = pre.apply_batch(rows)
    for i in range(rows.shape[0]):
        res, mask, rem = pre.apply(rows[i])
        assert np.array_equal(residuals[i], res), rows[i]
        assert int(masks[i]) == mask, rows[i]
        assert removed[i] == rem, rows[i]


@pytest.mark.parametrize("density", [0.0, 0.02, 0.1, 0.3])
def test_apply_batch_matches_scalar_on_surface_graph(
    surface_case, dense_syndromes, density
):
    g, _, _ = surface_case(3, 1e-3, 5000, 3)  # shares the offload test's case
    rows = dense_syndromes(g, 300, density, seed=int(density * 100))
    pre = Predecoder(g)
    residuals, masks, removed = pre.apply_batch(rows)
    for i in range(rows.shape[0]):
        res, mask, rem = pre.apply(rows[i])
        assert np.array_equal(residuals[i], res)
        assert int(masks[i]) == mask
        assert removed[i] == rem


def test_apply_batch_rejects_bad_shapes(chain_graph):
    pre = Predecoder(chain_graph(4))
    with pytest.raises(ValueError):
        pre.apply_batch(np.zeros(4, dtype=bool))
    with pytest.raises(ValueError):
        pre.apply_batch(np.zeros((2, 5), dtype=bool))


def test_predecoded_batch_path_uses_vectorized_pass(surface_case, monkeypatch):
    g, det, _ = surface_case(3, 1e-3, 4000, 5)
    wrapped = PredecodedDecoder(g, UnionFindDecoder(g))
    calls = {"scalar": 0}
    original = Predecoder.apply

    def counting_apply(self, detectors):
        calls["scalar"] += 1
        return original(self, detectors)

    monkeypatch.setattr(Predecoder, "apply", counting_apply)
    batched = wrapped.decode_batch(det)
    assert calls["scalar"] == 0  # no per-syndrome python pass on the fast path
    reference = PredecodedDecoder(g, UnionFindDecoder(g))
    assert np.array_equal(batched, reference.decode_batch(det, dedup=False))
    assert vars(wrapped.stats) == vars(reference.stats)
