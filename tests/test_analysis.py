"""Tests for the ``repro.analysis`` static-analysis subsystem.

Three layers:

* **fixture tests** — each determinism/hygiene rule against the marker
  files under ``tests/analysis_fixtures/`` (never imported, only parsed);
* **sandbox mutation tests** — copy the real ``src/`` + ``tests/
  test_kernels.py`` + ``docs/`` into a tmp repo, seed the exact defect a
  rule exists to catch, and assert the CLI exits nonzero with a
  ``file:line`` finding.  These are the issue's acceptance criteria.
* **gate tests** — the shipped tree itself lints clean, so the CI gate
  (``scripts/check_lint.py``) is green with an empty baseline.
"""

import json
import os
import re
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro import analysis, cli
from repro.analysis import (
    Finding,
    LintContext,
    module_digest,
    run_lint,
)
from repro.analysis.saltdrift import current_salt, read_lock

REPO = Path(__file__).resolve().parents[1]
FIXTURES = Path(__file__).resolve().parent / "analysis_fixtures"

#: the file-scope rules exercised by the marker fixtures
FILE_RULES = [
    "determinism-time",
    "determinism-rng",
    "determinism-entropy",
    "determinism-id",
    "determinism-set-order",
    "determinism-env",
    "hygiene-mutable-default",
    "hygiene-bare-except",
]

#: config override making the fixture dir count as decode path
FIXTURE_SCOPE = {"decode_path": ["tests/analysis_fixtures"]}


def marker_map(path: Path) -> dict:
    """rule -> set of line numbers, from ``# HIT <rule>`` markers."""
    hits: dict = {}
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        m = re.search(r"# HIT ([a-z][a-z0-9-]*)", line)
        if m:
            hits.setdefault(m.group(1), set()).add(lineno)
    return hits


# ---------------------------------------------------------------- registry


def test_registry_names_and_available():
    names = analysis.names()
    assert names == sorted(names)
    assert len(names) == 14
    assert analysis.available() == names
    for family in ("determinism-time", "contract-parity-tests", "salt-drift"):
        assert family in names


def test_registry_rejects_duplicates_and_unknowns():
    class Clash(analysis.Rule):
        name = "determinism-time"

    with pytest.raises(ValueError, match="already registered"):
        analysis.register(Clash())
    with pytest.raises(ValueError, match="non-empty name"):
        analysis.register(analysis.Rule())
    with pytest.raises(KeyError, match="registered"):
        analysis.get("no-such-rule")


def test_registry_replace_flag_swaps_rule():
    original = analysis.get("hygiene-bare-except")

    class Stand_in(analysis.Rule):
        name = "hygiene-bare-except"

    try:
        swapped = analysis.register(Stand_in(), replace=True)
        assert analysis.get("hygiene-bare-except") is swapped
    finally:
        analysis.register(original, replace=True)


def test_run_lint_unknown_only_raises_keyerror():
    with pytest.raises(KeyError, match="registered"):
        run_lint(root=REPO, only=["nope"])


# ------------------------------------------------------- fixture rule tests


def test_dirty_fixture_findings_match_markers():
    report = run_lint(
        ["tests/analysis_fixtures/dirty_decode.py"],
        root=REPO,
        only=FILE_RULES,
        config=FIXTURE_SCOPE,
    )
    got: dict = {}
    for f in report.findings:
        got.setdefault(f.rule, set()).add(f.line)
    assert got == marker_map(FIXTURES / "dirty_decode.py")
    # hygiene rules warn, determinism rules error
    severities = {f.rule: f.severity for f in report.findings}
    assert severities["determinism-time"] == "error"
    assert severities["hygiene-mutable-default"] == "warning"


def test_clean_fixture_is_silent_with_one_pragma():
    report = run_lint(
        ["tests/analysis_fixtures/clean_decode.py"],
        root=REPO,
        only=FILE_RULES,
        config=FIXTURE_SCOPE,
    )
    assert report.findings == []
    assert report.suppressed == 1  # the acknowledged wall-clock stamp


def test_determinism_rules_ignore_files_outside_decode_path():
    # same dirty file, default decode-path scope: nothing under
    # tests/analysis_fixtures is in the decode path, so only the
    # repo-wide hygiene rules may fire
    report = run_lint(
        ["tests/analysis_fixtures/dirty_decode.py"],
        root=REPO,
        only=FILE_RULES,
    )
    assert {f.rule for f in report.findings} == {
        "hygiene-mutable-default",
        "hygiene-bare-except",
    }


def test_backend_registry_contract_fixture():
    report = run_lint(
        ["tests/analysis_fixtures/clean_decode.py"],
        root=REPO,
        only=["contract-backend-registry"],
        config={"backends_module": "tests/analysis_fixtures/bad_backends.py"},
    )
    expected = marker_map(FIXTURES / "bad_backends.py")["contract-backend-registry"]
    assert {f.line for f in report.findings} == expected
    joined = " ".join(f.message for f in report.findings)
    assert "available" in joined and "fallback" in joined and "name" in joined


# ------------------------------------------------------------ findings API


def test_finding_format_and_roundtrip():
    f = Finding(path="a/b.py", line=7, col=3, rule="determinism-id", severity="error", message="m")
    assert f.format() == "a/b.py:7:3: determinism-id [error] m"
    assert Finding.from_dict(f.to_dict()) == f
    assert f.baseline_key() == ("determinism-id", "a/b.py", "m")


def test_findings_sort_by_location():
    a = Finding(path="a.py", line=2, col=0, rule="r", severity="error", message="m")
    b = Finding(path="a.py", line=10, col=0, rule="r", severity="error", message="m")
    c = Finding(path="b.py", line=1, col=0, rule="r", severity="error", message="m")
    assert sorted([c, b, a]) == [a, b, c]


# ------------------------------------------------------------ salt digests


def test_module_digest_ignores_comments_docstrings_blanks():
    base = 'def f(x):\n    """doc."""\n    return x + 1  # note\n'
    d0 = module_digest(base)
    assert module_digest(base.replace("doc.", "rewritten docstring")) == d0
    assert module_digest(base.replace("# note", "# different note")) == d0
    assert module_digest("\n" + base + "\n\n") == d0
    assert module_digest(base.replace("x + 1", "x + 2")) != d0


def test_committed_lock_matches_tree():
    ctx = LintContext(REPO)
    lock = read_lock(ctx)
    assert lock is not None
    salt, _ = current_salt(ctx)
    assert lock["salt"] == salt
    for rel, digest in lock["modules"].items():
        assert module_digest(ctx.source(rel)) == digest, rel


# --------------------------------------------------------------- sandboxes


def make_sandbox(tmp_path: Path) -> Path:
    """Copy the lint-relevant slice of the repo into a tmp root."""
    box = tmp_path / "box"
    (box / "tests").mkdir(parents=True)
    (box / "benchmarks").mkdir()
    shutil.copytree(
        REPO / "src", box / "src", ignore=shutil.ignore_patterns("__pycache__")
    )
    shutil.copytree(REPO / "docs", box / "docs")
    shutil.copy2(REPO / "tests" / "test_kernels.py", box / "tests" / "test_kernels.py")
    # the figure-registry contract cross-references the benchmark harness
    for bench in (REPO / "benchmarks").glob("*.py"):
        shutil.copy2(bench, box / "benchmarks" / bench.name)
    shutil.copy2(REPO / "pyproject.toml", box / "pyproject.toml")
    return box


def test_sandbox_copy_lints_clean(tmp_path):
    report = run_lint(root=make_sandbox(tmp_path))
    assert report.findings == []


def test_mutation_wallclock_in_store_keys_fails(tmp_path, capsys):
    box = make_sandbox(tmp_path)
    keys = box / "src" / "repro" / "store" / "keys.py"
    keys.write_text(
        keys.read_text() + "\n\ndef _now():\n    import time\n    return time.time()\n"
    )
    assert cli.main(["lint", "--root", str(box)]) == 1
    out = capsys.readouterr().out
    hit = keys.read_text().splitlines().index("    return time.time()") + 1
    assert f"src/repro/store/keys.py:{hit}:" in out
    assert "determinism-time" in out
    # keys.py is salt-tracked, so the drift rule fires too
    assert "salt-drift" in out


def test_mutation_decoder_edit_without_salt_bump_fails(tmp_path, capsys):
    box = make_sandbox(tmp_path)
    uf = box / "src" / "repro" / "decoders" / "kernels" / "batched_unionfind.py"
    uf.write_text(uf.read_text() + "\nUNIONFIND_PROBE_LIMIT = 4096\n")
    assert cli.main(["lint", "--root", str(box)]) == 1
    out = capsys.readouterr().out
    assert "src/repro/decoders/kernels/batched_unionfind.py:1:" in out
    assert "salt-drift" in out and "STORE_SALT" in out


def test_comment_only_decoder_edit_stays_clean(tmp_path):
    box = make_sandbox(tmp_path)
    uf = box / "src" / "repro" / "decoders" / "unionfind.py"
    uf.write_text(uf.read_text() + "\n# prose-only edit: no digest change\n")
    assert cli.main(["lint", "--root", str(box)]) == 0


def test_mutation_dropped_parity_case_fails(tmp_path, capsys):
    box = make_sandbox(tmp_path)
    tk = box / "tests" / "test_kernels.py"
    src = tk.read_text()
    needle = '["unionfind", "mwpm", "predecoded", "hierarchical"]'
    assert needle in src
    tk.write_text(src.replace(needle, '["unionfind", "mwpm", "hierarchical"]'))
    assert cli.main(["lint", "--root", str(box)]) == 1
    out = capsys.readouterr().out
    assert "contract-parity-tests" in out and "predecoded" in out
    assert re.search(r"src/repro/experiments/ler\.py:\d+:", out)


def test_mutation_salt_bump_then_update_lock_workflow(tmp_path, capsys):
    box = make_sandbox(tmp_path)
    keys = box / "src" / "repro" / "store" / "keys.py"
    src = keys.read_text()
    assert '"repro-store-v2"' in src
    keys.write_text(src.replace('"repro-store-v2"', '"repro-store-v3"'))
    # bumped salt without re-locking: the rule names both salts
    assert cli.main(["lint", "--root", str(box)]) == 1
    out = capsys.readouterr().out
    assert "repro-store-v2" in out and "repro-store-v3" in out
    # the blessing workflow clears it
    assert cli.main(["lint", "--root", str(box), "--update-lock"]) == 0
    lock = json.loads((box / "src/repro/analysis/decode_path.lock").read_text())
    assert lock["salt"] == "repro-store-v3"


def test_mutation_worker_global_rebind_fails(tmp_path):
    box = make_sandbox(tmp_path)
    par = box / "src" / "repro" / "experiments" / "parallel.py"
    src = par.read_text()
    needle = "def _run_task(task: SweepTask) -> LerResult:\n"
    assert needle in src
    par.write_text(
        src.replace(needle, needle + "    global _WORKER_PROBE\n    _WORKER_PROBE = 1\n")
    )
    report = run_lint(root=box, only=["contract-worker-globals"])
    assert any(
        f.path == "src/repro/experiments/parallel.py"
        and "_run_task" in f.message
        and "_WORKER_PROBE" in f.message
        for f in report.findings
    )


def test_mutation_undocumented_env_knob_fails(tmp_path):
    box = make_sandbox(tmp_path)
    ler = box / "src" / "repro" / "experiments" / "ler.py"
    ler.write_text(
        ler.read_text() + '\nUNDOC_PROBE = env_int("REPRO_UNDOCUMENTED_PROBE", 0)\n'
    )
    report = run_lint(root=box, only=["contract-env-docs"])
    assert any("REPRO_UNDOCUMENTED_PROBE" in f.message for f in report.findings)


def test_mutation_spec_without_benchmark_wrapper_fails(tmp_path):
    box = make_sandbox(tmp_path)
    builders = box / "src" / "repro" / "figures" / "builders.py"
    builders.write_text(
        builders.read_text()
        + "\nregister(FigureSpec(name=\"fig999\", category=\"analytic\","
        "\n    anchor=\"Fig. 999\", title=\"probe\", builder=_fig10,"
        "\n    params={}, columns=(\"x\",)))\n"
    )
    report = run_lint(root=box, only=["contract-figure-registry"])
    assert any(
        f.path == "src/repro/figures/builders.py" and "fig999" in f.message
        for f in report.findings
    )


def test_mutation_orphan_benchmark_fails(tmp_path):
    box = make_sandbox(tmp_path)
    orphan = box / "benchmarks" / "test_fig998_orphan.py"
    orphan.write_text("def test_fig998(benchmark):\n    pass\n")
    report = run_lint(root=box, only=["contract-figure-registry"])
    assert any(
        f.path == "benchmarks/test_fig998_orphan.py"
        and "build_figure" in f.message
        for f in report.findings
    )


def test_baseline_silences_known_findings(tmp_path, capsys):
    box = make_sandbox(tmp_path)
    keys = box / "src" / "repro" / "store" / "keys.py"
    keys.write_text(
        keys.read_text() + "\n\ndef _now():\n    import time\n    return time.time()\n"
    )
    dirty = run_lint(root=box)
    assert dirty.findings
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps(dirty.to_dict()))
    again = run_lint(root=box, baseline=baseline)
    assert again.findings == []
    assert again.baselined == len(dirty.findings)
    # and through the CLI flag
    assert cli.main(["lint", "--root", str(box), "--baseline", str(baseline)]) == 0
    capsys.readouterr()


def test_lint_json_format_is_machine_readable(tmp_path, capsys):
    box = make_sandbox(tmp_path)
    uf = box / "src" / "repro" / "decoders" / "unionfind.py"
    uf.write_text(uf.read_text() + "\nUNIONFIND_PROBE_LIMIT = 4096\n")
    assert cli.main(["lint", "--root", str(box), "--format", "json"]) == 1
    data = json.loads(capsys.readouterr().out)
    assert data["findings"] and data["findings"][0]["rule"] == "salt-drift"
    assert {"path", "line", "col", "rule", "severity", "message"} <= set(
        data["findings"][0]
    )


# -------------------------------------------------------------- the gate


def test_shipped_tree_lints_clean():
    report = run_lint(root=REPO)
    assert [f.format() for f in report.findings] == []


def test_check_lint_gate_exits_zero_on_repo():
    proc = subprocess.run(
        [sys.executable, str(REPO / "scripts" / "check_lint.py")],
        capture_output=True,
        text=True,
        cwd=REPO,
        env={**os.environ, "PYTHONPATH": str(REPO / "src")},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
