"""DEM-sampler tests: statistics, batching, reproducibility."""

import numpy as np
import pytest

from repro.stab import DemSampler
from repro.stab.dem import DemError, DetectorErrorModel


def _dem(errors, ndet=3, nobs=1):
    return DetectorErrorModel(
        errors=[DemError(p, d, o) for p, d, o in errors],
        num_detectors=ndet,
        num_observables=nobs,
        detector_coords=[()] * ndet,
        detector_basis=["Z"] * ndet,
    )


def test_single_error_rate():
    dem = _dem([(0.25, (0,), (0,))])
    sampler = DemSampler(dem)
    det, obs = sampler.sample(40000, rng=0)
    assert det[:, 0].mean() == pytest.approx(0.25, abs=0.01)
    assert obs[:, 0].mean() == pytest.approx(0.25, abs=0.01)
    assert np.array_equal(det[:, 0], obs[:, 0])


def test_two_errors_on_same_detector_xor():
    dem = _dem([(0.3, (0,), ()), (0.3, (0,), (0,))])
    # distinct signatures (observables differ) stay separate mechanisms
    det, obs = DemSampler(dem).sample(60000, rng=1)
    expected = 0.3 * 0.7 + 0.7 * 0.3
    assert det[:, 0].mean() == pytest.approx(expected, abs=0.01)


def test_zero_probability_never_fires():
    dem = _dem([(0.0, (0,), (0,))])
    det, obs = DemSampler(dem).sample(1000, rng=2)
    assert det.sum() == 0 and obs.sum() == 0


def test_high_probability_error():
    dem = _dem([(0.95, (1,), ())])
    det, _ = DemSampler(dem).sample(20000, rng=3)
    assert det[:, 1].mean() == pytest.approx(0.95, abs=0.01)


def test_batching_does_not_change_statistics():
    dem = _dem([(0.1, (0, 1), (0,)), (0.05, (2,), ())])
    sampler = DemSampler(dem)
    det_a, _ = sampler.sample(30000, rng=7, batch_size=30000)
    det_b, _ = sampler.sample(30000, rng=7, batch_size=512)
    assert np.allclose(det_a.mean(axis=0), det_b.mean(axis=0), atol=0.01)


def test_return_errors_matrix():
    dem = _dem([(0.2, (0,), ()), (0.2, (1,), ())])
    det, obs, err = DemSampler(dem).sample(5000, rng=4, return_errors=True)
    assert err.shape == (5000, 2)
    # detector outcomes must be exactly the error matrix columns here
    assert np.array_equal(det[:, 0], err.toarray()[:, 0].astype(bool))


def test_empty_model():
    dem = _dem([])
    det, obs = DemSampler(dem).sample(100, rng=5)
    assert det.shape == (100, 3)
    assert det.sum() == 0


def test_num_errors_property():
    dem = _dem([(0.1, (0,), ()), (0.2, (1,), ())])
    assert DemSampler(dem).num_errors == 2
