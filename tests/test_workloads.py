"""Workload IR, generators, and QASM parser tests."""

import math

import pytest

from repro.workloads import (
    LogicalCircuit,
    PAPER_WORKLOADS,
    QasmError,
    build_workload,
    ghz,
    ising,
    multiplier,
    parse_qasm,
    qft,
    qpe,
    shor,
    wstate,
)


def test_ir_validation():
    c = LogicalCircuit(2)
    with pytest.raises(ValueError):
        c.append("cx", (0, 0))
    with pytest.raises(ValueError):
        c.append("h", 5)
    with pytest.raises(ValueError):
        LogicalCircuit(0)


def test_ir_depth():
    c = LogicalCircuit(3)
    c.h(0)
    c.cx(0, 1)
    c.cx(1, 2)
    c.h(2)
    assert c.depth() == 4
    assert c.count("cx") == 2


def test_rotation_kind_classification():
    c = LogicalCircuit(1)
    c.rz(0, math.pi)  # Clifford (Z)
    c.rz(0, math.pi / 2)  # Clifford (S)
    c.rz(0, math.pi / 4)  # T
    c.rz(0, 0.123)  # needs synthesis
    kinds = [g.rotation_kind() for g in c.gates]
    assert kinds == ["clifford", "clifford", "t", "synth"]
    with pytest.raises(ValueError):
        c.gates[0].__class__(name="h", qubits=(0,)).rotation_kind()


def test_qft_structure():
    c = qft(5)
    assert c.num_qubits == 5
    assert c.count("h") == 5
    assert c.count("cp") == 10  # n(n-1)/2
    assert c.count("swap") == 2
    assert c.count("measure") == 5


def test_qpe_structure():
    c = qpe(6)
    assert c.num_qubits == 6
    assert c.count("measure") == 5  # counting qubits only
    assert c.count("cp") > 0


def test_ising_structure():
    c = ising(8, steps=2)
    assert c.num_qubits == 8
    assert c.count("rx") == 16
    assert c.count("rzz") == 14


def test_wstate_structure():
    c = wstate(6)
    assert c.num_qubits == 6
    assert c.count("ry") == 10  # 2 per cascade step
    assert c.count("x") == 1


def test_multiplier_is_toffoli_heavy():
    c = multiplier(3)
    assert c.num_qubits == 13
    assert c.count("ccx") > c.count("cx")


def test_shor_is_rotation_heavy():
    c = shor(15)
    assert c.num_qubits == 2 * 4 + 5
    assert c.count("cp") > 100


def test_ghz_is_clifford_only():
    from repro.workloads import estimate_resources

    c = ghz(10)
    res = estimate_resources(c)
    assert res.t_count == 0
    assert res.rotation_count == 0


def test_paper_workloads_all_build():
    for name in PAPER_WORKLOADS:
        c = build_workload(name)
        assert len(c.gates) > 0
    with pytest.raises(ValueError):
        build_workload("nope-1")


# --- QASM parser ----------------------------------------------------------------

SAMPLE = """
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
h q[0];
cx q[0],q[1];
rz(pi/4) q[2];
cp(pi/2) q[0], q[2];
barrier q;
measure q[0] -> c[0];
measure q -> c;
"""


def test_parse_qasm_sample():
    c = parse_qasm(SAMPLE)
    assert c.num_qubits == 3
    assert c.count("h") == 1
    assert c.count("cx") == 1
    assert c.count("rz") == 1
    assert c.count("cp") == 1
    assert c.count("measure") == 4  # one explicit + broadcast over 3
    rz = next(g for g in c.gates if g.name == "rz")
    assert rz.angle == pytest.approx(math.pi / 4)


def test_parse_qasm_angle_expressions():
    c = parse_qasm("qreg q[1]; rz(2*pi/8) q[0];")
    assert c.gates[0].angle == pytest.approx(math.pi / 4)


def test_parse_qasm_errors():
    with pytest.raises(QasmError):
        parse_qasm("h q[0];")  # no qreg
    with pytest.raises(QasmError):
        parse_qasm("qreg q[1]; frobnicate q[0];")
    with pytest.raises(QasmError):
        parse_qasm("qreg q[1]; h q[5];")
    with pytest.raises(QasmError):
        parse_qasm("qreg q[1]; rz(__import__) q[0];")


def test_parse_qasm_round_trip_resources():
    from repro.workloads import estimate_resources

    direct = qft(4)
    qasm_lines = ["OPENQASM 2.0;", "qreg q[4];", "creg c[4];"]
    for g in direct.gates:
        if g.name == "cp":
            qasm_lines.append(f"cp({g.angle}) q[{g.qubits[0]}],q[{g.qubits[1]}];")
        elif g.name == "h":
            qasm_lines.append(f"h q[{g.qubits[0]}];")
        elif g.name == "swap":
            qasm_lines.append(f"swap q[{g.qubits[0]}],q[{g.qubits[1]}];")
        elif g.name == "measure":
            qasm_lines.append(f"measure q[{g.qubits[0]}] -> c[{g.qubits[0]}];")
    parsed = parse_qasm("\n".join(qasm_lines))
    a = estimate_resources(direct)
    b = estimate_resources(parsed)
    assert a.t_count == b.t_count
    assert a.logical_timesteps == b.logical_timesteps
