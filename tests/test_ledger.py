"""The run-ledger contract (docs/OBSERVABILITY.md, `repro.obs.ledger`).

Four families of guarantees:

* **Bit-neutrality** — the ledger records *about* a sweep without touching
  it: stored point records are byte-identical with the ledger on vs. off,
  across the sequential and speculative schedulers at 1 and 4 workers, and
  a ledger-off run leaves no ``runs/`` directory at all.
* **Accounting** — ledger batch events are emitted at exactly the sites
  where the sweep report's counters increment, so totals always agree.
* **Crash tolerance** — the event log is append-only; a torn tail line
  (process killed mid-append) is skipped by every reader, never fatal.
* **Worker provenance** — pool-decoded batches carry the worker's real
  pid, including under the ``spawn`` start method where workers share no
  state with the coordinator.
"""

import json
import multiprocessing
import os

import pytest

from repro import obs
from repro.experiments.parallel import reset_warm_state
from repro.experiments.sweeps import (
    PolicySpec,
    SweepSpec,
    record_parity_view,
    run_sweep,
)
from repro.noise import GOOGLE
from repro.obs import RunLedger, RunWriter, sweep_manifest, watch_snapshot
from repro.store import ResultStore


@pytest.fixture(autouse=True)
def _clean_slate(monkeypatch):
    # ledger decisions must come from the test, not the ambient environment
    monkeypatch.delenv("REPRO_RUN_LEDGER", raising=False)
    monkeypatch.delenv("REPRO_MP_START_METHOD", raising=False)
    obs.reset()
    reset_warm_state()
    yield
    obs.reset()
    reset_warm_state()


def _spec(**overrides):
    base = dict(
        name="ledger-parity",
        distances=(2,),
        taus_ns=(500.0,),
        policies=(PolicySpec("passive"), PolicySpec("active")),
        hardware=GOOGLE,
        seed=11,
        batch_shots=400,
        min_shots=400,
        max_shots=1200,
        target_rse=0.12,
        p=5e-3,
    )
    base.update(overrides)
    return SweepSpec(**base)


def _records(report):
    return {o.key: o.record for o in report.outcomes}


def _pinned_writer(store, spec, **kwargs):
    """A RunWriter with heartbeats always-on (interval 0) for inspection."""
    return RunWriter(
        store.runs_root,
        sweep_manifest(spec, **kwargs),
        heartbeat_interval=0.0,
    )


# ---------------------------------------------------------------------------
# bit-neutrality: ledger on/off, across both schedulers
# ---------------------------------------------------------------------------


def test_ledger_bit_neutral_across_schedulers(tmp_path):
    """{ledger on, off} x {sequential, --speculate 4} x {1, 4 workers}."""
    spec = _spec()
    store_ref = ResultStore(tmp_path / "ref")
    reference = _records(run_sweep(spec, store_ref, ledger=False))
    assert not store_ref.runs_root.exists()  # off really writes nothing

    for speculate in (0, 4):
        for workers in (1, 4):
            reset_warm_state()
            store = ResultStore(tmp_path / f"s{speculate}w{workers}")
            report = run_sweep(
                spec, store, workers=workers, speculate=speculate, ledger=True
            )
            got = _records(report)
            assert got.keys() == reference.keys()
            for key, ref in reference.items():
                assert record_parity_view(got[key]) == record_parity_view(ref), (
                    f"speculate={speculate} workers={workers}"
                )
            # the run really was recorded
            ledger = RunLedger.for_store(store)
            assert ledger.run_ids() == [report.run_id]
            names = [ev["ev"] for ev in ledger.events(report.run_id)]
            assert names[0] == "run_start" and names[-1] == "run_finish"


def test_ledger_env_knob_disables_default(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RUN_LEDGER", "0")
    store = ResultStore(tmp_path / "s")
    report = run_sweep(_spec(max_shots=400), store)  # ledger=None -> env
    assert report.run_id is None
    assert not store.runs_root.exists()


def test_ledger_data_never_reaches_point_records(tmp_path):
    """On-disk store diff: everything except runs/ identical with ledger on/off."""
    spec = _spec(max_shots=800)
    stores = {}
    for tag, ledger in (("on", True), ("off", False)):
        reset_warm_state()
        store = ResultStore(tmp_path / tag)
        run_sweep(spec, store, ledger=ledger)
        stores[tag] = store

    def payload(store):
        out = {}
        for sub in ("points", "batches"):
            base = store.root / sub
            for path in sorted(base.rglob("*.json")):
                rec = json.loads(path.read_text())
                # strip the wall-clock/scheduling-dependent fields parity
                # ignores (decode_seconds, per-worker cache splits, ...)
                if sub == "points":
                    rec = record_parity_view(rec)
                else:
                    rec = {k: v for k, v in rec.items() if k != "decode_stats"}
                out[str(path.relative_to(store.root))] = rec
        return out

    assert payload(stores["on"]) == payload(stores["off"])
    assert (stores["on"].root / "runs").exists()
    assert not (stores["off"].root / "runs").exists()


# ---------------------------------------------------------------------------
# accounting: ledger totals == report counters
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("workers,speculate", [(1, 0), (4, 4)])
def test_ledger_batch_events_match_report_counters(tmp_path, workers, speculate):
    spec = _spec()
    store = ResultStore(tmp_path / "s")
    writer = _pinned_writer(store, spec, workers=workers, speculate=speculate)
    report = run_sweep(
        spec, store, workers=workers, speculate=speculate, ledger=writer
    )
    events = RunLedger.for_store(store).events(report.run_id)
    kinds = {"decoded": 0, "replayed": 0, "overshoot": 0}
    shots = 0
    for ev in events:
        if ev["ev"] == "batch":
            kinds[ev["kind"]] += 1
            if ev["kind"] == "decoded":
                shots += ev["shots"]
    assert kinds["decoded"] == report.batches_decoded
    assert kinds["replayed"] == report.batches_replayed
    assert kinds["overshoot"] == report.batches_overshoot
    assert shots == report.shots_decoded
    converged = [ev for ev in events if ev["ev"] == "point_converged"]
    assert len(converged) == len(report.outcomes)
    assert any(ev["ev"] == "heartbeat" for ev in events)  # interval pinned to 0


def test_store_served_points_are_ledgered_not_decoded(tmp_path):
    spec = _spec(max_shots=400)
    store = ResultStore(tmp_path / "s")
    run_sweep(spec, store, ledger=False)
    writer = _pinned_writer(store, spec)
    report = run_sweep(spec, store, ledger=writer)
    events = RunLedger.for_store(store).events(report.run_id)
    names = [ev["ev"] for ev in events]
    assert names.count("point_store_served") == len(report.outcomes)
    assert "batch" not in names and "point_start" not in names


# ---------------------------------------------------------------------------
# manifest + reader surface
# ---------------------------------------------------------------------------


def test_manifest_captures_run_provenance(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_DECODE_DEDUP", "1")
    spec = _spec(max_shots=400)
    store = ResultStore(tmp_path / "s")
    report = run_sweep(spec, store, workers=1, speculate=0, ledger=True)
    ledger = RunLedger.for_store(store)
    manifest = ledger.manifest(report.run_id)
    assert manifest["schema"] == "repro.obs.run/v1"
    assert manifest["sweep"] == spec.name
    assert manifest["workers"] == 1 and manifest["speculate"] == 0
    assert manifest["seed"] == spec.seed
    assert len(manifest["spec_digest"]) == 64
    assert manifest["store_salt"]  # pinned to the store's key salt
    assert manifest["backend_resolved"] in manifest["backends_available"]
    assert manifest["env"]["REPRO_DECODE_DEDUP"] == "1"
    # finished manifests carry the outcome
    assert manifest["status"] == "ok"
    assert manifest["summary"]["points"] == len(report.outcomes)
    assert ledger.status(report.run_id) == "ok"
    # same spec, two launches -> two distinct sortable run ids
    report2 = run_sweep(spec, store, ledger=True)
    assert report2.run_id != report.run_id
    assert ledger.run_ids() == sorted(ledger.run_ids())


def test_watch_snapshot_reports_progress_and_totals(tmp_path):
    spec = _spec()
    store = ResultStore(tmp_path / "s")
    writer = _pinned_writer(store, spec)
    report = run_sweep(spec, store, ledger=writer)
    snap = watch_snapshot(store, report.run_id)
    assert snap["run_id"] == report.run_id
    assert snap["status"] == "ok"
    assert snap["points_expected"] == len(report.outcomes)
    assert {p["status"] for p in snap["points"]} == {"converged"}
    for p in snap["points"]:
        assert p["shots"] >= spec.min_shots
        assert p["batches"] >= 1
        assert "d=2" in p["label"]
    assert snap["totals"]["decoded"] == report.batches_decoded
    assert snap["eta_s"] is None  # finished runs advertise no ETA


def test_gc_prunes_on_age_and_respects_dry_run(tmp_path):
    spec = _spec(max_shots=400)
    store = ResultStore(tmp_path / "s")
    run_sweep(spec, store, ledger=True)
    ledger = RunLedger.for_store(store)
    (rid,) = ledger.run_ids()
    finished = ledger.manifest(rid)["finished_at"]

    kept = ledger.gc(older_than_seconds=3600.0, now=finished + 10.0)
    assert kept["removed"] == [] and kept["kept"] == 1

    dry = ledger.gc(older_than_seconds=5.0, now=finished + 10.0, dry_run=True)
    assert dry["removed"] == [rid] and dry["dry_run"]
    assert ledger.run_ids() == [rid]  # dry run deleted nothing

    wet = ledger.gc(older_than_seconds=5.0, now=finished + 10.0)
    assert wet["removed"] == [rid]
    assert ledger.run_ids() == []


# ---------------------------------------------------------------------------
# crash tolerance: torn tail lines
# ---------------------------------------------------------------------------


def test_truncated_event_tail_is_skipped_not_fatal(tmp_path):
    spec = _spec(max_shots=400)
    store = ResultStore(tmp_path / "s")
    report = run_sweep(spec, store, ledger=True)
    ledger = RunLedger.for_store(store)
    before = ledger.events(report.run_id)

    events_path = store.runs_root / report.run_id / "events.jsonl"
    with open(events_path, "a") as f:
        f.write('{"ev": "heartbeat", "t": 99.9, "pi')  # killed mid-append

    after = ledger.events(report.run_id)
    assert after == before  # torn tail skipped, everything else intact
    assert ledger.status(report.run_id) == "ok"
    snap = watch_snapshot(store, report.run_id)
    assert snap["status"] == "ok"


def test_crashed_run_reads_as_running(tmp_path):
    """A writer that never finishes (process died) is visible, not broken."""
    spec = _spec(max_shots=400)
    store = ResultStore(tmp_path / "s")
    writer = _pinned_writer(store, spec)
    writer.point_start("k" * 64, config={"d": 2, "tau_ns": 500.0}, shots=0)
    writer.batch("k" * 64, 0, 400, "decoded", worker_pid=123)
    # no finish(): simulate a crash
    ledger = RunLedger.for_store(store)
    assert ledger.status(writer.run_id) == "running"
    manifest = ledger.manifest(writer.run_id)
    assert manifest["status"] == "running"
    assert "finished_at" not in manifest
    names = [ev["ev"] for ev in ledger.events(writer.run_id)]
    assert names[0] == "run_start" and "run_finish" not in names


# ---------------------------------------------------------------------------
# spawn start method: worker provenance crosses process boundaries
# ---------------------------------------------------------------------------


def test_spawn_workers_report_spans_and_pids(tmp_path, monkeypatch):
    if "spawn" not in multiprocessing.get_all_start_methods():
        pytest.skip("platform has no spawn start method")
    trace_path = tmp_path / "t.json"
    monkeypatch.setenv("REPRO_MP_START_METHOD", "spawn")
    # spawn workers re-import repro and self-activate recording from the env
    monkeypatch.setenv("REPRO_TRACE", str(trace_path))
    obs.reset()

    spec = _spec(policies=(PolicySpec("passive"),), max_shots=800)
    store = ResultStore(tmp_path / "s")
    writer = _pinned_writer(store, spec, workers=2, speculate=2)
    try:
        report = run_sweep(spec, store, workers=2, speculate=2, ledger=writer)
        events = list(obs.active().events)
    finally:
        obs.reset()

    # worker spans crossed the spawn boundary into the merged timeline
    assert {"decode.kernel", "sweep.dispatch"} <= {ev["name"] for ev in events}
    assert len({ev["pid"] for ev in events}) >= 2

    ledger_events = RunLedger.for_store(store).events(report.run_id)
    decoded = [
        ev for ev in ledger_events
        if ev["ev"] == "batch" and ev["kind"] == "decoded"
    ]
    assert decoded
    worker_pids = {ev.get("worker_pid") for ev in decoded} - {None}
    assert worker_pids and os.getpid() not in worker_pids
    assert report.batches_decoded == len(decoded)
    # parity still holds under spawn
    reset_warm_state()
    monkeypatch.delenv("REPRO_MP_START_METHOD", raising=False)
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    obs.reset()
    reference = _records(run_sweep(spec, ResultStore(tmp_path / "ref"), ledger=False))
    got = _records(report)
    assert got.keys() == reference.keys()
    for key, ref in reference.items():
        assert record_parity_view(got[key]) == record_parity_view(ref)


def test_inline_executor_reports_coordinator_pid_provenance(tmp_path):
    """workers<=1 + speculate runs the zero-IPC inline executor: every
    decoded batch must carry the coordinator's own pid as provenance (no
    pool process ever exists), spans must still record, and parity with the
    sequential scheduler must hold."""
    spec = _spec(policies=(PolicySpec("passive"),), max_shots=800)
    obs.reset()
    obs.configure(trace_path=tmp_path / "t.json")
    store = ResultStore(tmp_path / "s")
    writer = _pinned_writer(store, spec, workers=0, speculate=2)
    try:
        report = run_sweep(spec, store, workers=0, speculate=2, ledger=writer)
        events = list(obs.active().events)
    finally:
        obs.reset()

    # inline tasks run in-process, so spans land directly on the recorder
    assert {"decode.kernel", "sweep.dispatch"} <= {ev["name"] for ev in events}
    assert {ev["pid"] for ev in events} == {os.getpid()}

    ledger_events = RunLedger.for_store(store).events(report.run_id)
    decoded = [
        ev for ev in ledger_events
        if ev["ev"] == "batch" and ev["kind"] == "decoded"
    ]
    assert decoded
    assert {ev.get("worker_pid") for ev in decoded} == {os.getpid()}
    assert report.batches_decoded == len(decoded)

    reset_warm_state()
    reference = _records(run_sweep(spec, ResultStore(tmp_path / "ref"), ledger=False))
    got = _records(report)
    assert got.keys() == reference.keys()
    for key, ref in reference.items():
        assert record_parity_view(got[key]) == record_parity_view(ref)


def test_estimate_point_cost_shared_model():
    from repro.obs.ledger import estimate_point_cost

    # fresh point: every batch remains
    assert estimate_point_cost(0, 2000, 400) == {
        "batches_total": 5, "batches_remaining": 5, "new_shots": 2000,
    }
    # partial with commit-ahead batches: they replay, not decode
    assert estimate_point_cost(800, 2000, 400, ahead=2) == {
        "batches_total": 3, "batches_remaining": 1, "new_shots": 400,
    }
    # log ahead of the cap never goes negative
    assert estimate_point_cost(1600, 2000, 400, ahead=9) == {
        "batches_total": 1, "batches_remaining": 0, "new_shots": 0,
    }
    # converged / at cap: nothing left
    assert estimate_point_cost(2000, 2000, 400) == {
        "batches_total": 0, "batches_remaining": 0, "new_shots": 0,
    }
