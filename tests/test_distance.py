"""Fault-distance validation: the schedule-correctness gate for all circuits.

A wrong CNOT order (hook errors), a bad detector definition, or a broken
observable would show up here as a fault distance below the code distance.
"""

import pytest

from repro.codes import SurgerySpec, memory_experiment, surgery_experiment
from repro.decoders import build_matching_graph, graphlike_distance
from repro.stab import circuit_to_dem


@pytest.mark.parametrize("basis", ["X", "Z"])
@pytest.mark.parametrize("d", [3, 5])
def test_memory_fault_distance(basis, d, ibm_noise):
    art = memory_experiment(d, d + 1, ibm_noise, basis=basis)
    dem = circuit_to_dem(art.circuit)
    graph = build_matching_graph(dem, basis=basis)
    assert graph.decomposition_fallbacks == 0
    assert graphlike_distance(graph, 0) == d


@pytest.mark.parametrize("ls_basis", ["X", "Z"])
def test_surgery_fault_distance(ls_basis, ibm_noise):
    d = 3
    art = surgery_experiment(SurgerySpec(distance=d, noise=ibm_noise, ls_basis=ls_basis))
    dem = circuit_to_dem(art.circuit)
    graph = build_matching_graph(dem, basis=art.detector_basis)
    assert graph.decomposition_fallbacks == 0
    for obs_index in range(3):
        assert graphlike_distance(graph, obs_index) == d


def test_seam_detector_strengthens_joint_observable(ibm_noise):
    """Ablation: the seam-product detector makes the joint observable a
    monitored stabilizer (effectively infinite graphlike protection)."""
    d = 3
    art = surgery_experiment(
        SurgerySpec(distance=d, noise=ibm_noise, ls_basis="Z", include_seam_detector=True)
    )
    dem = circuit_to_dem(art.circuit)
    graph = build_matching_graph(dem, basis=art.detector_basis)
    assert graphlike_distance(graph, 0) > d  # single observable strengthened
    assert graphlike_distance(graph, 1) == -1  # joint: no graphlike logical


def test_idle_noise_does_not_change_distance(google_noise):
    """Synchronization idles add error mechanisms but no shorter logicals."""
    from repro.timing import PatchTimeline

    d = 3
    spec = SurgerySpec(
        distance=d,
        noise=google_noise,
        ls_basis="Z",
        timeline_p=PatchTimeline.uniform(d + 1, pre_ns=250.0),
        timeline_pp=PatchTimeline.uniform(d + 1),
    )
    art = surgery_experiment(spec)
    dem = circuit_to_dem(art.circuit)
    graph = build_matching_graph(dem, basis=art.detector_basis)
    assert graphlike_distance(graph, 1) == d
