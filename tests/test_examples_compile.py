"""The examples must at least parse/compile and expose a main()."""

import ast
import pathlib
import py_compile

import pytest

EXAMPLES = sorted((pathlib.Path(__file__).parent.parent / "examples").glob("*.py"))


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 4  # quickstart + >=3 domain scenarios


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path, tmp_path):
    py_compile.compile(str(path), cfile=str(tmp_path / "out.pyc"), doraise=True)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_structure(path):
    tree = ast.parse(path.read_text())
    assert ast.get_docstring(tree), f"{path.name} needs a module docstring"
    functions = {n.name for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)}
    assert "main" in functions, f"{path.name} should define main()"
    # examples only use the public package, never test helpers
    for node in ast.walk(tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            module = getattr(node, "module", "") or ""
            names = [a.name for a in node.names]
            for name in [module] + names:
                assert not name.startswith("tests"), f"{path.name} imports test code"
