"""Shim so editable installs work without the `wheel` package (offline env)."""
from setuptools import setup

setup()
